package harness

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/mathutil"
	"ciphermatch/internal/metrics"
	"ciphermatch/internal/proto"
	"ciphermatch/internal/rng"
	"ciphermatch/internal/trace"
)

// StormTarget is one database a storm hammers: its name on the server
// and the prepared queries (round-robined per connection). Expect, when
// non-nil, is index-aligned ground truth; every mismatch is counted as
// a wrong result — the dropped/corrupted-result detector for CI.
type StormTarget struct {
	DB      string
	Queries []*core.Query
	Expect  [][]int
}

// StormConfig drives one closed-loop load-generation run against a live
// cmserver. Connections are spread round-robin across Targets; each
// connection issues queries back-to-back (or throttled at PerConnQPS)
// until Duration elapses.
type StormConfig struct {
	Addr    string
	Params  bfv.Params
	Targets []StormTarget
	// Conns is the number of concurrent client connections (the closed
	// loop's concurrency level). Defaults to 8.
	Conns int
	// PerConnQPS throttles each connection to this rate; 0 means
	// unthrottled closed-loop (send next query as soon as the previous
	// reply lands).
	PerConnQPS float64
	// Duration is how long the storm runs. Defaults to 2s.
	Duration time.Duration
	// Retry, when Max > 0, arms client-side retry-with-backoff on every
	// storm connection (the chaos smoke runs with this on: injected
	// connection faults must resolve as retries, not client errors).
	// Each connection gets a distinct seed derived from Retry.Seed.
	Retry proto.RetryPolicy
}

// StormReport is the machine-readable outcome of one storm run:
// client-side latency/throughput plus the server-side serving-metrics
// delta (coalesce rate, batch occupancy, arena passes saved) captured
// over exactly the storm interval.
type StormReport struct {
	Conns       int     `json:"conns"`
	DurationSec float64 `json:"duration_sec"`

	// Client-side view.
	Queries      int64   `json:"queries"`
	QPS          float64 `json:"qps"`
	Errors       int64   `json:"errors"`
	Rejected     int64   `json:"rejected"`      // admission-control ErrOverloaded replies
	ServerFaults int64   `json:"server_faults"` // typed MsgServerError replies (panic, corruption)
	Retries      int64   `json:"retries"`       // client-side request replays
	Reconnects   int64   `json:"reconnects"`    // client-side re-dials after poisoned conns
	WrongResults int64   `json:"wrong_results"`
	LatMeanMs    float64 `json:"lat_mean_ms"`
	LatP50Ms     float64 `json:"lat_p50_ms"`
	LatP95Ms     float64 `json:"lat_p95_ms"`
	LatP99Ms     float64 `json:"lat_p99_ms"`
	LatMaxMs     float64 `json:"lat_max_ms"`

	// Server-side delta over the run (from MsgStats snapshots).
	ServerQueries      int64   `json:"server_queries"`
	Batches            int64   `json:"batches"`
	CoalescedQueries   int64   `json:"coalesced_queries"`
	CoalesceRate       float64 `json:"coalesce_rate"`
	BatchOccupancyMean float64 `json:"batch_occupancy_mean"`
	ChunkStreams       int64   `json:"chunk_streams"`
	ChunkStreamsSaved  int64   `json:"chunk_streams_saved"`
	// ChunkStreamsPerQuery vs the unbatched baseline (one full arena
	// pass per query, i.e. NumChunks streams) is the acceptance metric:
	// coalescing must push the former strictly below the latter.
	ChunkStreamsPerQuery          float64 `json:"chunk_streams_per_query"`
	UnbatchedChunkStreamsPerQuery int64   `json:"unbatched_chunk_streams_per_query"`

	// Per-stage latency attribution from the server's trace flight
	// recorder, sampled at the end of the run (the newest ring
	// contents — a tail sample of the storm, not every request).
	TraceSamples    int               `json:"trace_samples,omitempty"`
	TraceCorrelated int               `json:"trace_correlated,omitempty"` // samples carrying a storm-minted client trace ID
	Stages          []StormStageStats `json:"stages,omitempty"`
	// Per-tenant serving telemetry: query/error counts from the
	// server's labeled /metrics deltas, latency quantiles from its
	// trace samples.
	Tenants []StormTenantStats `json:"tenants,omitempty"`
}

// StormStageStats summarises one request-lifecycle stage across the
// run's trace samples.
type StormStageStats struct {
	Stage  string  `json:"stage"`
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// StormTenantStats is one tenant's slice of the storm.
type StormTenantStats struct {
	DB           string  `json:"db"`
	Queries      int64   `json:"queries"` // server-side tenant_queries_total delta
	Errors       int64   `json:"errors"`  // server-side tenant_errors_total delta
	TraceSamples int64   `json:"trace_samples"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`
}

func (c StormConfig) withDefaults() StormConfig {
	if c.Conns <= 0 {
		c.Conns = 8
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	return c
}

// statDelta returns after[name]-before[name], tolerating names missing
// from either snapshot (counts as zero — e.g. a coalescing-disabled
// server never registers batch counters).
func statDelta(before, after []metrics.KV, name string) int64 {
	b, _ := metrics.Lookup(before, name)
	a, _ := metrics.Lookup(after, name)
	return a - b
}

// RunStorm executes one closed-loop storm per StormConfig and returns
// its report. The databases in cfg.Targets must already be uploaded.
func RunStorm(cfg StormConfig) (*StormReport, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("harness: storm needs at least one target")
	}
	for _, tgt := range cfg.Targets {
		if len(tgt.Queries) == 0 {
			return nil, fmt.Errorf("harness: storm target %q has no queries", tgt.DB)
		}
	}

	// Control connection: server-side metrics snapshots bracketing the
	// run, so the report's server delta covers exactly this storm.
	ctrl, err := proto.Dial(cfg.Addr, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("harness: storm control dial: %w", err)
	}
	defer ctrl.Close()
	if cfg.Retry.Max > 0 {
		policy := cfg.Retry
		policy.Seed = cfg.Retry.Seed + "/ctrl"
		ctrl.SetRetry(policy)
	}

	// Pre-encode every request once (payloads are connection-
	// independent): the storm measures serving throughput, so the
	// generator amortizes request construction the way any production
	// client replaying a hot query would, instead of re-encoding
	// chunk-count polynomials on every send.
	prepared := make([][][]byte, len(cfg.Targets))
	for ti, tgt := range cfg.Targets {
		prepared[ti] = make([][]byte, len(tgt.Queries))
		for qi, q := range tgt.Queries {
			if prepared[ti][qi], err = ctrl.PrepareSearch(tgt.DB, q); err != nil {
				return nil, fmt.Errorf("harness: storm encode %q: %w", tgt.DB, err)
			}
		}
	}

	before, err := ctrl.ServerStats()
	if err != nil {
		return nil, fmt.Errorf("harness: storm stats: %w", err)
	}

	var (
		lat        metrics.Histogram
		queries    atomic.Int64
		errs       atomic.Int64
		rejected   atomic.Int64
		faults     atomic.Int64
		wrong      atomic.Int64
		retries    atomic.Int64
		reconnects atomic.Int64
	)
	var interval time.Duration
	if cfg.PerConnQPS > 0 {
		interval = time.Duration(float64(time.Second) / cfg.PerConnQPS)
	}

	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	dialErrs := make(chan error, cfg.Conns)
	start := time.Now()
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := proto.Dial(cfg.Addr, cfg.Params)
			if err != nil {
				dialErrs <- err
				return
			}
			defer conn.Close()
			if cfg.Retry.Max > 0 {
				policy := cfg.Retry
				policy.Seed = fmt.Sprintf("%s/conn%d", cfg.Retry.Seed, c)
				conn.SetRetry(policy)
			}
			// Per-connection trace ID bases partition the 64-bit space, so
			// every storm request is client-correlated in the server's
			// flight recorder without coordination between connections.
			conn.EnableTracing(uint64(c+1) << 48)
			defer func() {
				rs := conn.RetryStats()
				retries.Add(rs.Retries)
				reconnects.Add(rs.Reconnects)
			}()
			tgt := cfg.Targets[c%len(cfg.Targets)]
			payloads := prepared[c%len(cfg.Targets)]
			next := time.Now()
			for k := 0; ; k++ {
				if interval > 0 {
					time.Sleep(time.Until(next))
					next = next.Add(interval)
				}
				if !time.Now().Before(deadline) {
					return
				}
				qi := k % len(tgt.Queries)
				t0 := time.Now()
				got, err := conn.SearchPrepared(payloads[qi])
				lat.Observe(time.Since(t0).Nanoseconds())
				queries.Add(1)
				switch {
				case errors.Is(err, proto.ErrOverloaded):
					rejected.Add(1)
				case errors.Is(err, proto.ErrServerFault):
					faults.Add(1)
				case err != nil:
					errs.Add(1)
				case tgt.Expect != nil && !equalCandidates(got, tgt.Expect[qi]):
					wrong.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(dialErrs)
	for err := range dialErrs {
		return nil, fmt.Errorf("harness: storm dial: %w", err)
	}

	after, err := ctrl.ServerStats()
	if err != nil {
		return nil, fmt.Errorf("harness: storm stats: %w", err)
	}

	rep := &StormReport{
		Conns:        cfg.Conns,
		DurationSec:  elapsed.Seconds(),
		Queries:      queries.Load(),
		Errors:       errs.Load(),
		Rejected:     rejected.Load(),
		ServerFaults: faults.Load(),
		Retries:      retries.Load(),
		Reconnects:   reconnects.Load(),
		WrongResults: wrong.Load(),
		LatP50Ms:     float64(lat.Quantile(0.50)) / 1e6,
		LatP95Ms:     float64(lat.Quantile(0.95)) / 1e6,
		LatP99Ms:     float64(lat.Quantile(0.99)) / 1e6,
		LatMaxMs:     float64(lat.Max()) / 1e6,

		ServerQueries:     statDelta(before, after, "queries_total"),
		Batches:           statDelta(before, after, "batches_total"),
		CoalescedQueries:  statDelta(before, after, "coalesced_queries_total"),
		ChunkStreams:      statDelta(before, after, "chunk_streams_total"),
		ChunkStreamsSaved: statDelta(before, after, "chunk_streams_saved_total"),

		UnbatchedChunkStreamsPerQuery: int64(cfg.Targets[0].Queries[0].NumChunks),
	}
	if rep.Queries > 0 {
		rep.QPS = float64(rep.Queries) / elapsed.Seconds()
		rep.LatMeanMs = float64(lat.Sum()) / float64(lat.Count()) / 1e6
	}
	if rep.ServerQueries > 0 {
		rep.CoalesceRate = float64(rep.CoalescedQueries) / float64(rep.ServerQueries)
		rep.ChunkStreamsPerQuery = float64(rep.ChunkStreams) / float64(rep.ServerQueries)
	}
	if occBatches := statDelta(before, after, "batch_occupancy_count"); occBatches > 0 {
		rep.BatchOccupancyMean = float64(statDelta(before, after, "batch_occupancy_sum")) / float64(occBatches)
	}

	// Stage-level attribution from the server's flight recorder. A
	// pre-tracing server answers MsgTraceDump with MsgError; the report
	// then simply omits the breakdown rather than failing the storm.
	if dump, err := ctrl.TraceDump(0, false); err == nil {
		rep.addTraceBreakdown(cfg, before, after, dump)
	}
	return rep, nil
}

// addTraceBreakdown folds the server's trace samples into per-stage and
// per-tenant latency summaries, pairing them with the labeled
// per-tenant counter deltas from the /metrics snapshots.
func (rep *StormReport) addTraceBreakdown(cfg StormConfig, before, after []metrics.KV, dump []trace.Trace) {
	rep.TraceSamples = len(dump)
	var stageH [trace.NumStages]metrics.Histogram
	tenantH := make(map[string]*metrics.Histogram, len(cfg.Targets))
	for i := range dump {
		tr := &dump[i]
		for s, ns := range tr.StageNS {
			if ns > 0 {
				stageH[s].Observe(ns)
			}
		}
		if tr.Flags&trace.FlagClientID != 0 {
			rep.TraceCorrelated++
		}
		h := tenantH[tr.Tenant]
		if h == nil {
			h = &metrics.Histogram{}
			tenantH[tr.Tenant] = h
		}
		h.Observe(tr.TotalNS)
	}
	for s := range stageH {
		h := &stageH[s]
		if h.Count() == 0 {
			continue
		}
		rep.Stages = append(rep.Stages, StormStageStats{
			Stage:  trace.Stage(s).String(),
			Count:  h.Count(),
			MeanMs: float64(h.Sum()) / float64(h.Count()) / 1e6,
			P50Ms:  float64(h.Quantile(0.50)) / 1e6,
			P95Ms:  float64(h.Quantile(0.95)) / 1e6,
			P99Ms:  float64(h.Quantile(0.99)) / 1e6,
		})
	}
	for _, tgt := range cfg.Targets {
		ts := StormTenantStats{
			DB:      tgt.DB,
			Queries: statDelta(before, after, `tenant_queries_total{db="`+tgt.DB+`"}`),
			Errors:  statDelta(before, after, `tenant_errors_total{db="`+tgt.DB+`"}`),
		}
		if h := tenantH[tgt.DB]; h != nil {
			ts.TraceSamples = h.Count()
			ts.P50Ms = float64(h.Quantile(0.50)) / 1e6
			ts.P95Ms = float64(h.Quantile(0.95)) / 1e6
			ts.P99Ms = float64(h.Quantile(0.99)) / 1e6
		}
		rep.Tenants = append(rep.Tenants, ts)
	}
}

func equalCandidates(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NewStormTenant builds one storm tenant from a seed: an encrypted
// database of dbBytes with a known pattern planted, its factored and
// legacy queries (so storms exercise both wire representations in the
// same window), and serial-engine ground truth for both. Used by
// cmstorm (against a live server) and the serving bench (in-process).
func NewStormTenant(p bfv.Params, name, seed string, dbBytes int) (*core.EncryptedDB, *StormTarget, error) {
	cfg := core.Config{Params: p, AlignBits: 8, Mode: core.ModeSeededMatch}
	client, err := core.NewClient(cfg, rng.NewSourceFromString("storm-"+seed+"-"+name))
	if err != nil {
		return nil, nil, err
	}
	data := make([]byte, dbBytes)
	rng.NewSourceFromString("storm-data-" + seed + "-" + name).Bytes(data)
	pat := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	for j := 0; j < 32; j++ {
		mathutil.SetBit(data, 320+j, mathutil.GetBit(pat, j))
	}
	db, err := client.EncryptDatabase(data, dbBytes*8)
	if err != nil {
		return nil, nil, err
	}
	q, err := client.PrepareQuery(pat, 32, dbBytes*8)
	if err != nil {
		return nil, nil, err
	}
	lq, err := client.PrepareLegacyQuery(pat, 32, dbBytes*8)
	if err != nil {
		return nil, nil, err
	}
	eng := core.NewSerialEngine(p, db)
	tgt := &StormTarget{DB: name}
	for _, query := range []*core.Query{q, lq} {
		ir, err := eng.SearchAndIndex(query)
		if err != nil {
			return nil, nil, err
		}
		if len(ir.Candidates) == 0 {
			return nil, nil, fmt.Errorf("harness: storm tenant %s: vacuous fixture", name)
		}
		tgt.Queries = append(tgt.Queries, query)
		tgt.Expect = append(tgt.Expect, ir.Candidates)
		ir.Release()
	}
	return db, tgt, nil
}
