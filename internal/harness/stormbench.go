package harness

import (
	"fmt"
	"net"
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/proto"
)

// StormBenchResult is the serving-performance scenario persisted in
// BENCH_results.json: the standard fixture served to Conns concurrent
// same-database closed-loop clients, once with coalescing off (the
// per-query-arena-pass baseline) and once with the adaptive window on.
// The acceptance pair is BatchOccupancyMean > 1 and ChunkStreamsPerQuery
// strictly below UnbatchedChunkStreamsPerQuery; SpeedupPct records the
// throughput gain.
type StormBenchResult struct {
	Conns       int     `json:"conns"`
	DurationSec float64 `json:"duration_sec"`
	WindowUs    int64   `json:"window_us"`

	BaselineQPS      float64 `json:"baseline_qps"`
	QPS              float64 `json:"qps"`
	SpeedupPct       float64 `json:"speedup_pct"`
	BaselineLatP50Ms float64 `json:"baseline_lat_p50_ms"`
	LatP50Ms         float64 `json:"lat_p50_ms"`
	LatP95Ms         float64 `json:"lat_p95_ms"`

	CoalesceRate                  float64 `json:"coalesce_rate"`
	BatchOccupancyMean            float64 `json:"batch_occupancy_mean"`
	ChunkStreamsPerQuery          float64 `json:"chunk_streams_per_query"`
	UnbatchedChunkStreamsPerQuery int64   `json:"unbatched_chunk_streams_per_query"`
	ChunkStreamsSaved             int64   `json:"chunk_streams_saved"`
	Errors                        int64   `json:"errors"`
	WrongResults                  int64   `json:"wrong_results"`

	// Stages is the coalesced run's per-stage latency attribution from
	// the server's trace flight recorder (see StormReport.Stages).
	Stages []StormStageStats `json:"stages,omitempty"`
}

// StormBenchWindow is the coalescing window the serving bench runs
// with: generous enough that an 8-client closed loop over millisecond
// searches always finds batch partners, small enough to stay invisible
// next to one arena pass.
const StormBenchWindow = 2 * time.Millisecond

// stormServer starts an in-process server on a loopback port with the
// tenant uploaded, and returns its address plus a shutdown func.
func stormServer(p bfv.Params, db *core.EncryptedDB, name string, coalesce proto.CoalesceConfig) (string, func(), error) {
	srv, err := proto.NewServerWithServing(p, core.EngineSpec{}, proto.StoreOptions{}, coalesce)
	if err != nil {
		return "", nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	go srv.Serve(l) //nolint:errcheck // returns when the listener closes
	stop := func() {
		l.Close()
		srv.Close()
	}
	conn, err := proto.Dial(l.Addr().String(), p)
	if err != nil {
		stop()
		return "", nil, err
	}
	defer conn.Close()
	if err := conn.UploadDB(name, core.EngineSpec{}, db); err != nil {
		stop()
		return "", nil, err
	}
	return l.Addr().String(), stop, nil
}

// RunStormBench measures the serving-path scenario: the standard 4 KiB
// fixture geometry under conns concurrent same-database clients, with
// and without server-side coalescing, via the same RunStorm driver
// cmstorm uses. Pass conns<=0 / dur<=0 for the standard setting
// (8 clients, 2s per side).
func RunStormBench(conns int, dur time.Duration) (*StormBenchResult, error) {
	if conns <= 0 {
		conns = 8
	}
	if dur <= 0 {
		dur = 2 * time.Second
	}
	p := bfv.ParamsPaper()
	db, tgt, err := NewStormTenant(p, "stormbench", "engine-bench", 4096)
	if err != nil {
		return nil, err
	}

	run := func(coalesce proto.CoalesceConfig) (*StormReport, error) {
		addr, stop, err := stormServer(p, db, tgt.DB, coalesce)
		if err != nil {
			return nil, err
		}
		defer stop()
		return RunStorm(StormConfig{
			Addr:     addr,
			Params:   p,
			Targets:  []StormTarget{*tgt},
			Conns:    conns,
			Duration: dur,
		})
	}

	base, err := run(proto.CoalesceConfig{}) // zero Window: coalescing off
	if err != nil {
		return nil, fmt.Errorf("harness: storm baseline: %w", err)
	}
	coal, err := run(proto.CoalesceConfig{Window: StormBenchWindow, MaxBatch: conns})
	if err != nil {
		return nil, fmt.Errorf("harness: storm coalesced: %w", err)
	}

	res := &StormBenchResult{
		Conns:       conns,
		DurationSec: dur.Seconds(),
		WindowUs:    StormBenchWindow.Microseconds(),

		BaselineQPS:      base.QPS,
		QPS:              coal.QPS,
		BaselineLatP50Ms: base.LatP50Ms,
		LatP50Ms:         coal.LatP50Ms,
		LatP95Ms:         coal.LatP95Ms,

		CoalesceRate:                  coal.CoalesceRate,
		BatchOccupancyMean:            coal.BatchOccupancyMean,
		ChunkStreamsPerQuery:          coal.ChunkStreamsPerQuery,
		UnbatchedChunkStreamsPerQuery: coal.UnbatchedChunkStreamsPerQuery,
		ChunkStreamsSaved:             coal.ChunkStreamsSaved,
		Errors:                        base.Errors + coal.Errors,
		WrongResults:                  base.WrongResults + coal.WrongResults,
		Stages:                        coal.Stages,
	}
	if base.QPS > 0 {
		res.SpeedupPct = 100 * (coal.QPS - base.QPS) / base.QPS
	}
	return res, nil
}
