// Package harness defines one reproducible experiment per table and figure
// of the paper's evaluation (§3 motivation figures, §6 results), rendering
// the same rows/series the paper reports with the paper's own values
// printed alongside for comparison. cmd/cmbench runs them from the command
// line; bench_test.go wraps them as Go benchmarks.
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"

	"ciphermatch/internal/perfmodel"
)

// Table is the rendered result of one experiment.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "=== %s: %s ===\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV emits the table as CSV (headers + rows).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(m *perfmodel.Model) (*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment in ID order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// helpers shared by experiment implementations

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

func speedup(base, x perfmodel.Estimate) string {
	return fmt.Sprintf("%.1fx", base.Seconds/x.Seconds)
}

func energyRatio(base, x perfmodel.Estimate) string {
	return fmt.Sprintf("%.1fx", base.EnergyJ/x.EnergyJ)
}

func bytesHuman(b int64) string {
	switch {
	case b >= 1<<40:
		return fmt.Sprintf("%.1fTB", float64(b)/(1<<40))
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
