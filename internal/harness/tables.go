package harness

import (
	"fmt"
	"time"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/perfmodel"
	"ciphermatch/internal/ssd"
)

func init() {
	register(Experiment{ID: "table1", Title: "Comparison of prior Boolean and arithmetic approaches", Run: runTable1})
	register(Experiment{ID: "table2", Title: "Real CPU system configuration", Run: runTable2})
	register(Experiment{ID: "table3", Title: "Simulated system configurations (with derived quantities)", Run: runTable3})
	register(Experiment{ID: "overhead", Title: "CM-IFP storage and area overheads (§6.3, §7.1-7.2)", Run: runOverhead})
}

// runTable1 reproduces Table 1's qualitative matrix and adds the row for
// CIPHERMATCH plus the module implementing each approach in this repo.
func runTable1(m *perfmodel.Model) (*Table, error) {
	return &Table{
		ID:      "table1",
		Title:   "Prior-approach characteristics (Table 1) + this repository's implementations",
		Headers: []string{"Approach", "Prior work", "Exec. time", "Scalable", "SIMD", "Flexible query", "Implemented by"},
		Rows: [][]string{
			{"Boolean", "Pradel et al. [33]", "High", "yes", "no", "yes", "internal/core BooleanMatcher (no batching)"},
			{"Boolean", "Aziz et al. [17]", "High", "yes", "yes", "yes", "internal/core BooleanMatcher + model batching"},
			{"Arithmetic", "Yasuda et al. [27]", "Low", "no", "no", "no", "internal/core YasudaMatcher"},
			{"Arithmetic", "Kim et al. [34]", "High", "yes", "no", "no", "modelled only (HomEQ circuit)"},
			{"Arithmetic", "Bonte et al. [29]", "High", "yes", "yes", "no", "modelled only"},
			{"CIPHERMATCH", "this work", "Low", "yes", "yes", "yes*", "internal/core Client/Server"},
		},
		Notes: []string{
			"*flexible up to the boundary-bit caveat: occurrences shorter than 31 bits are only detectable at offsets leaving a full 16-bit window (DESIGN.md).",
		},
	}, nil
}

func runTable2(m *perfmodel.Model) (*Table, error) {
	r := m.Real
	return &Table{
		ID:      "table2",
		Title:   "Real CPU system (Table 2)",
		Headers: []string{"Component", "Configuration"},
		Rows: [][]string{
			{"CPU", fmt.Sprintf("%s, %d cores, %.1f GHz", r.CPU, r.Cores, r.ClockGHz)},
			{"L1/L2 private", fmt.Sprintf("%d KB / %d KB", r.L1KB, r.L2KB)},
			{"L3 shared", fmt.Sprintf("%d MB", r.L3MB)},
			{"Main memory", fmt.Sprintf("%d GB DDR4-2400, %d channels, %.1f GB/s", r.DRAMGB, r.DRAMChannels, r.DRAMBandwidth/1e9)},
			{"Storage", fmt.Sprintf("%s, %.0f GB/s PCIe", r.SSDModel, r.PCIeBandwidth/1e9)},
			{"OS", r.OS},
		},
	}, nil
}

func runTable3(m *perfmodel.Model) (*Table, error) {
	g := m.SSD.Geometry
	tm := m.SSD.Timing
	e := m.SSD.Energy
	t := &Table{
		ID:      "table3",
		Title:   "Simulated configurations (Table 3) and derived quantities",
		Headers: []string{"Quantity", "Value", "Paper value"},
		Rows: [][]string{
			{"NAND config", fmt.Sprintf("%dch x %ddies x %dplanes, %d blk/plane, %d WL/blk, %s pages",
				g.Channels, g.DiesPerChan, g.PlanesPerDie, g.BlocksPerPlane, g.WLsPerBlock(), bytesHuman(int64(g.PageBytes))), "same"},
			{"Tread (SLC)", tm.ReadSLC.String(), "22.5us"},
			{"TAND/OR", tm.AndOr.String(), "20ns"},
			{"Tlatch", tm.LatchTransfer.String(), "20ns"},
			{"TXOR", tm.Xor.String(), "30ns"},
			{"TDMA", tm.DMA.String(), "3.3us"},
			{"Tbop_add (Eq.10, derived)", tm.BopAdd().String(), "-"},
			{"Tbit_add (Eq.9, derived)", tm.BitAdd().String(), "29.38us"},
			{"Ebop_add (derived, 4KiB page)", fmt.Sprintf("%.2fuJ", e.BopAdd(4096)*1e6), "-"},
			{"Ebit_add (derived)", fmt.Sprintf("%.2fuJ", e.BitAdd(4096)*1e6), "32.22uJ/channel"},
			{"CM-PuM DRAM", fmt.Sprintf("%s, %d banks parallel-capable", m.DDR4.Name, m.DDR4.ParallelBanks()), "32GB DDR4-2400 4ch"},
			{"CM-PuM-SSD DRAM", m.LPDDR4.Name, "2GB LPDDR4-1866 1ch"},
			{"Tbbop", m.DDR4.Tbbop.String(), "49ns"},
			{"Ebbop", fmt.Sprintf("%.3fnJ", m.DDR4.Ebbop*1e9), "0.864nJ"},
			{"SSD ext. bandwidth", fmt.Sprintf("%.0fGB/s", m.Real.PCIeBandwidth/1e9), "7GB/s"},
			{"NAND channel rate", fmt.Sprintf("%.1fGB/s", m.SSD.ChannelBandwidth/1e9), "1.2GB/s"},
		},
		Notes: []string{
			fmt.Sprintf("derived Tbit_add differs from the paper's rounded value by %v (TDMA rounding)",
				(flashPaperTBitAdd - tm.BitAdd()).Abs()),
		},
	}
	return t, nil
}

const flashPaperTBitAdd = 29380 * time.Nanosecond

func runOverhead(m *perfmodel.Model) (*Table, error) {
	drive, err := ssd.New(m.SSD, bfv.ParamsPaper(), ssd.SoftwareTransposition)
	if err != nil {
		return nil, err
	}
	r := drive.Overheads()
	return &Table{
		ID:      "overhead",
		Title:   "CM-IFP overheads",
		Headers: []string{"Overhead", "Value", "Paper value"},
		Rows: [][]string{
			{"Result staging (internal DRAM)", bytesHuman(r.ResultStagingBytes), "0.5MB"},
			{"bop_add u-program", bytesHuman(r.MicroprogramBytes), "<1KB"},
			{"SLC-mode capacity loss", bytesHuman(r.SLCCapacityLossBytes), "2/3 of CM region"},
			{"NAND peripheral area", fmt.Sprintf("%.1f%%", r.PeripheralAreaOverheadPct), "0.6%"},
			{"HW transposition unit", fmt.Sprintf("%.2fmm2, %v/4KiB", r.TransposeUnitAreaMM2, m.SSD.HardTransposeLatency), "0.24mm2, 158ns"},
			{"AES index encryption", fmt.Sprintf("%.2fmm2, %.1fns/16B", r.AESUnitAreaMM2, r.AESLatencyPer16BNanos), "0.13mm2, 12.6ns"},
		},
	}, nil
}
