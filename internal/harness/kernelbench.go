package harness

import (
	"fmt"
	"io"
	"testing"

	"ciphermatch/internal/ring"
	"ciphermatch/internal/rng"
)

// KernelBenchResult is one (kernel, dispatch path, modulus class)
// measurement on the standard kernel arena workload. CoeffsPerSec is
// the figure of merit for the vectorized-kernel work — fused
// compare-lanes retired per second — and ArenaGBPerSec the effective
// streaming bandwidth over the two coefficient planes the kernel reads
// per pass, comparable against the machine's memory bandwidth ceiling.
type KernelBenchResult struct {
	Kernel        string  `json:"kernel"`  // "subcmp" or "addcmp"
	Path          string  `json:"path"`    // dispatch path: generic | unrolled | avx2
	QClass        string  `json:"q_class"` // "pow2" or "generic"
	R             int     `json:"r"`       // comparands per coefficient (subcmp fan-out)
	Chunks        int     `json:"chunks"`
	N             int     `json:"n"`
	NsPerOp       float64 `json:"ns_per_op"`
	CoeffsPerSec  float64 `json:"coeffs_per_sec"`
	ArenaGBPerSec float64 `json:"arena_gb_per_sec"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
}

// Kernel arena workload: one op sweeps a 64-chunk × n=1024 arena — the
// paper's ring degree at a 0.5 MiB-per-plane footprint, so the body
// loop runs from memory rather than L1 and the figure reflects the
// serving access pattern (per-chunk ciphertext plane against a shared
// database token, verdict bitsets indexed by absolute window).
const (
	kernelBenchChunks = 64
	kernelBenchN      = 1024
	kernelBenchR      = 4
)

// kernelBenchQ maps the modulus classes to representative moduli: the
// paper's q = 2^32 for the mask path and a 40-bit odd q for the
// branchless conditional-subtract path.
var kernelBenchQ = map[string]uint64{
	"pow2":    1 << 32,
	"generic": (1 << 40) + 15,
}

// RunKernelBench measures the fused compare kernels under every
// dispatch path available on this machine, for both modulus classes,
// on the standard kernel arena workload. Ordering is deterministic:
// kernels × q-classes × paths, with the active path forced via
// ring.SetKernel and restored before returning.
func RunKernelBench() ([]KernelBenchResult, error) {
	prev := ring.ActiveKernel()
	defer ring.SetKernel(prev)

	var results []KernelBenchResult
	for _, qClass := range []string{"pow2", "generic"} {
		q := kernelBenchQ[qClass]
		r := ring.MustNew(kernelBenchN, q)
		src := rng.NewSourceFromString("kernel-bench-" + qClass)
		// Per-chunk ciphertext planes against one shared token plane,
		// exactly the arena layout one search streams.
		chunks := make([]ring.Poly, kernelBenchChunks)
		for c := range chunks {
			chunks[c] = r.NewPoly()
			r.UniformPoly(src, chunks[c])
		}
		d := r.NewPoly()
		r.UniformPoly(src, d)
		rhs := make([]ring.Poly, kernelBenchR)
		for v := range rhs {
			rhs[v] = r.NewPoly()
			r.UniformPoly(src, rhs[v])
		}
		words := (kernelBenchChunks*kernelBenchN + 63) / 64
		subBits := make([][]uint64, kernelBenchR)
		for v := range subBits {
			subBits[v] = make([]uint64, words)
		}
		addBits := make([]uint64, words)

		for _, path := range ring.AvailableKernels() {
			if err := ring.SetKernel(path); err != nil {
				return nil, fmt.Errorf("harness: forcing kernel path %s: %w", path, err)
			}
			sub := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for c := range chunks {
						r.SubCmpMultiBits(chunks[c], d, rhs, subBits, c*kernelBenchN)
					}
				}
			})
			results = append(results, newKernelBenchResult("subcmp", path, qClass, kernelBenchR, sub))
			add := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for c := range chunks {
						r.AddCmpBits(chunks[c], d, rhs[0], addBits, c*kernelBenchN)
					}
				}
			})
			results = append(results, newKernelBenchResult("addcmp", path, qClass, 1, add))
		}
	}
	return results, nil
}

func newKernelBenchResult(kernel string, path ring.KernelPath, qClass string, R int, res testing.BenchmarkResult) KernelBenchResult {
	nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
	out := KernelBenchResult{
		Kernel:      kernel,
		Path:        path.String(),
		QClass:      qClass,
		R:           R,
		Chunks:      kernelBenchChunks,
		N:           kernelBenchN,
		NsPerOp:     nsPerOp,
		AllocsPerOp: res.AllocsPerOp(),
	}
	if nsPerOp > 0 {
		coeffs := float64(kernelBenchChunks) * float64(kernelBenchN) * float64(R)
		out.CoeffsPerSec = coeffs / (nsPerOp / 1e9)
		// Two coefficient planes (ciphertext + token) streamed per pass.
		arenaBytes := float64(2 * kernelBenchChunks * kernelBenchN * 8)
		out.ArenaGBPerSec = arenaBytes / (nsPerOp / 1e9) / 1e9
	}
	return out
}

// WriteKernelBenchTable renders kernel results as an aligned table.
func WriteKernelBenchTable(w io.Writer, results []KernelBenchResult) {
	fmt.Fprintf(w, "  %-7s %-9s %-8s %2s %14s %15s %10s %7s\n",
		"kernel", "path", "q-class", "R", "ns/op", "coeffs/s", "arena GB/s", "allocs")
	for _, k := range results {
		fmt.Fprintf(w, "  %-7s %-9s %-8s %2d %14.0f %15.3e %10.2f %7d\n",
			k.Kernel, k.Path, k.QClass, k.R, k.NsPerOp, k.CoeffsPerSec, k.ArenaGBPerSec, k.AllocsPerOp)
	}
}

// kernelBenchKey identifies a kernel measurement across reports.
func (k KernelBenchResult) key() string {
	return k.Kernel + "/" + k.Path + "/" + k.QClass
}

// bestSubcmpPow2 returns the fastest subcmp pow2 measurement, the
// acceptance-tracked row (best path vs the committed generic baseline).
func bestSubcmpPow2(results []KernelBenchResult) (best, generic *KernelBenchResult) {
	for i := range results {
		k := &results[i]
		if k.Kernel != "subcmp" || k.QClass != "pow2" {
			continue
		}
		if k.Path == ring.KernelGeneric.String() {
			generic = k
		}
		if best == nil || k.CoeffsPerSec > best.CoeffsPerSec {
			best = k
		}
	}
	return best, generic
}

// writeKernelDelta prints the per-path kernel comparison against a
// baseline report's kernels section (if either side has one), plus the
// acceptance-tracked best-vs-generic speedup for subcmp pow2.
func writeKernelDelta(w io.Writer, news, olds []KernelBenchResult) {
	if len(news) == 0 {
		return
	}
	byKey := make(map[string]KernelBenchResult, len(olds))
	for _, k := range olds {
		byKey[k.key()] = k
	}
	fmt.Fprintf(w, "  kernels (coeffs/s):\n")
	fmt.Fprintf(w, "    %-7s %-9s %-8s %15s %15s %9s\n",
		"kernel", "path", "q-class", "old", "new", "Δ")
	for _, k := range news {
		o, ok := byKey[k.key()]
		if !ok {
			fmt.Fprintf(w, "    %-7s %-9s %-8s %15s %15.3e %9s  (new path)\n",
				k.Kernel, k.Path, k.QClass, "-", k.CoeffsPerSec, "-")
			continue
		}
		delta := "~"
		if o.CoeffsPerSec > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(k.CoeffsPerSec-o.CoeffsPerSec)/o.CoeffsPerSec)
		}
		fmt.Fprintf(w, "    %-7s %-9s %-8s %15.3e %15.3e %9s\n",
			k.Kernel, k.Path, k.QClass, o.CoeffsPerSec, k.CoeffsPerSec, delta)
	}
	if best, generic := bestSubcmpPow2(news); best != nil && generic != nil && generic.CoeffsPerSec > 0 {
		fmt.Fprintf(w, "    subcmp pow2 R=%d best path %s: %.2fx vs generic this run",
			best.R, best.Path, best.CoeffsPerSec/generic.CoeffsPerSec)
		if _, oldGen := bestSubcmpPow2(olds); oldGen != nil && oldGen.CoeffsPerSec > 0 {
			fmt.Fprintf(w, ", %.2fx vs committed baseline generic", best.CoeffsPerSec/oldGen.CoeffsPerSec)
		}
		fmt.Fprintln(w)
	}
}
