// Package pum is a SIMDRAM-style processing-using-memory simulator [49],
// the substrate of the paper's CM-PuM (external DDR4) and CM-PuM-SSD
// (SSD-internal LPDDR4) comparison points (§5.2).
//
// SIMDRAM computes bulk bitwise operations with charge-sharing
// triple-row activation: the fundamental primitives are MAJ3 (majority of
// three rows), NOT (via dual-contact cells) and RowClone copies. Every such
// bulk operation processes an entire DRAM row (8 KiB = 65536 bit lanes) in
// Tbbop = 49 ns and Ebbop = 0.864 nJ (Table 3). Addition is bit-serial
// over vertically transposed operands, exactly as in the flash adder, with
// a majority-based full adder.
package pum

import "time"

// Config describes a PuM-capable DRAM device.
type Config struct {
	Name          string
	CapacityBytes int64
	Channels      int
	Ranks         int
	BanksPerRank  int
	RowBytes      int
	// Tbbop is the latency of one bulk bitwise operation (triple-row
	// activation sequence).
	Tbbop time.Duration
	// Ebbop is the energy of one bulk bitwise operation.
	Ebbop float64
	// PeakBandwidth is the conventional access bandwidth (bytes/s), used
	// by the data-movement model.
	PeakBandwidth float64
}

// ExternalDDR4 returns the CM-PuM configuration of Table 3: 32 GB
// DDR4-2400, 4 channels × 1 rank × 16 banks, 19.2 GB/s.
func ExternalDDR4() Config {
	return Config{
		Name:          "DDR4-2400 (external)",
		CapacityBytes: 32 << 30,
		Channels:      4,
		Ranks:         1,
		BanksPerRank:  16,
		RowBytes:      8192,
		Tbbop:         49 * time.Nanosecond,
		Ebbop:         0.864e-9,
		PeakBandwidth: 19.2e9,
	}
}

// InternalLPDDR4 returns the CM-PuM-SSD configuration of Table 3: 2 GB
// LPDDR4-1866 inside the SSD, 1 channel × 1 rank × 8 banks. Tbbop is the
// DDR4-2400 value derated by the clock ratio 2400/1866 ≈ 1.29 (bulk ops
// are activation-timing bound).
func InternalLPDDR4() Config {
	return Config{
		Name:          "LPDDR4-1866 (SSD-internal)",
		CapacityBytes: 2 << 30,
		Channels:      1,
		Ranks:         1,
		BanksPerRank:  8,
		RowBytes:      8192,
		Tbbop:         63 * time.Nanosecond,
		Ebbop:         0.864e-9,
		PeakBandwidth: 7.46e9,
	}
}

// RowBits returns the bit lanes per row.
func (c Config) RowBits() int { return c.RowBytes * 8 }

// ParallelBanks returns the number of banks that can execute bulk ops
// concurrently — the array-level parallelism of the device.
func (c Config) ParallelBanks() int { return c.Channels * c.Ranks * c.BanksPerRank }

// Full-adder microprogram costs, derived in add.go:
//
//	Cout = MAJ(A, B, Cin)
//	S    = MAJ(NOT(Cout), MAJ(A, B, NOT(Cin)), Cin)
//
// per bit: 3 MAJ + 2 NOT = 5 bulk ops, plus 3 RowClone copies to stage
// operands into the compute rows and write the sum back.
const (
	// AddBbopsPerBit is the number of MAJ/NOT bulk operations per bit of
	// bit-serial addition.
	AddBbopsPerBit = 5
	// AddRowClonesPerBit is the number of RowClone copies per bit.
	AddRowClonesPerBit = 3
)

// Add32Latency returns the latency of one 32-bit bit-serial addition
// across a full row of lanes (every lane adds independently).
func (c Config) Add32Latency() time.Duration {
	return time.Duration(32*(AddBbopsPerBit+AddRowClonesPerBit)) * c.Tbbop
}

// Add32Energy returns the energy of one 32-bit row-wide addition.
func (c Config) Add32Energy() float64 {
	return 32 * (AddBbopsPerBit + AddRowClonesPerBit) * c.Ebbop
}
