package pum

import (
	"fmt"
	"time"
)

// Bank is one functional PuM DRAM bank: a sparse set of rows supporting
// RowClone copies and MAJ3/NOT bulk operations. Row indices are abstract;
// a real SIMDRAM deployment constrains compute rows to designated subarray
// groups, which the simulator does not need to model for correctness.
type Bank struct {
	cfg   Config
	words int
	rows  map[int][]uint64
	stats Stats
}

// Stats accumulates bulk-operation counts, time and energy for a bank.
type Stats struct {
	MajOps    int
	NotOps    int
	RowClones int
	Time      time.Duration
	Energy    float64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.MajOps += other.MajOps
	s.NotOps += other.NotOps
	s.RowClones += other.RowClones
	s.Time += other.Time
	s.Energy += other.Energy
}

// NewBank creates a functional bank for the given configuration.
func NewBank(cfg Config) *Bank {
	return &Bank{cfg: cfg, words: cfg.RowBytes / 8, rows: make(map[int][]uint64)}
}

// Stats returns the accumulated statistics.
func (b *Bank) Stats() Stats { return b.stats }

// ResetStats clears the statistics.
func (b *Bank) ResetStats() { b.stats = Stats{} }

// Config returns the bank configuration.
func (b *Bank) Config() Config { return b.cfg }

func (b *Bank) row(i int) []uint64 {
	r, ok := b.rows[i]
	if !ok {
		r = make([]uint64, b.words)
		b.rows[i] = r
	}
	return r
}

// WriteRow stores data into row i (host write; not a bulk op).
func (b *Bank) WriteRow(i int, data []uint64) error {
	if len(data) != b.words {
		return fmt.Errorf("pum: row data must be %d words, got %d", b.words, len(data))
	}
	copy(b.row(i), data)
	return nil
}

// ReadRow returns a copy of row i.
func (b *Bank) ReadRow(i int) []uint64 {
	out := make([]uint64, b.words)
	copy(out, b.row(i))
	return out
}

func (b *Bank) chargeBbop() {
	b.stats.Time += b.cfg.Tbbop
	b.stats.Energy += b.cfg.Ebbop
}

// RowClone copies row src to row dst using in-DRAM copy (RowClone [119]).
func (b *Bank) RowClone(src, dst int) {
	copy(b.row(dst), b.row(src))
	b.stats.RowClones++
	b.chargeBbop()
}

// Maj3 computes the bitwise majority of rows a, b, c into dst
// (triple-row activation).
func (b *Bank) Maj3(a, c, d, dst int) {
	ra, rc, rd := b.row(a), b.row(c), b.row(d)
	out := b.row(dst)
	for i := range out {
		out[i] = (ra[i] & rc[i]) | (ra[i] & rd[i]) | (rc[i] & rd[i])
	}
	b.stats.MajOps++
	b.chargeBbop()
}

// Not computes the bitwise complement of row src into dst (dual-contact
// cell readout).
func (b *Bank) Not(src, dst int) {
	rs := b.row(src)
	out := b.row(dst)
	for i := range out {
		out[i] = ^rs[i]
	}
	b.stats.NotOps++
	b.chargeBbop()
}
