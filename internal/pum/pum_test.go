package pum

import (
	"testing"
	"testing/quick"

	"ciphermatch/internal/rng"
)

func testConfig() Config {
	c := ExternalDDR4()
	c.RowBytes = 256 // keep test rows small (2048 lanes)
	return c
}

func TestConfigDerived(t *testing.T) {
	ddr := ExternalDDR4()
	if ddr.ParallelBanks() != 64 {
		t.Errorf("DDR4 parallel banks = %d, want 64 (4ch x 16)", ddr.ParallelBanks())
	}
	lp := InternalLPDDR4()
	if lp.ParallelBanks() != 8 {
		t.Errorf("LPDDR4 parallel banks = %d, want 8", lp.ParallelBanks())
	}
	if ddr.RowBits() != 65536 {
		t.Errorf("row bits = %d, want 65536", ddr.RowBits())
	}
	// 32-bit add: 32 × 8 ops × 49 ns = 12.544 µs.
	if got := ddr.Add32Latency().Nanoseconds(); got != 32*8*49 {
		t.Errorf("Add32Latency = %dns, want %d", got, 32*8*49)
	}
}

func TestMajNotRowClone(t *testing.T) {
	b := NewBank(testConfig())
	src := rng.NewSourceFromString("pum-ops")
	ra := make([]uint64, b.words)
	rb := make([]uint64, b.words)
	rc := make([]uint64, b.words)
	for i := 0; i < b.words; i++ {
		ra[i], rb[i], rc[i] = src.Uint64(), src.Uint64(), src.Uint64()
	}
	b.WriteRow(0, ra)
	b.WriteRow(1, rb)
	b.WriteRow(2, rc)
	b.Maj3(0, 1, 2, 3)
	maj := b.ReadRow(3)
	for i := range maj {
		want := (ra[i] & rb[i]) | (ra[i] & rc[i]) | (rb[i] & rc[i])
		if maj[i] != want {
			t.Fatal("Maj3 wrong")
		}
	}
	b.Not(0, 4)
	not := b.ReadRow(4)
	for i := range not {
		if not[i] != ^ra[i] {
			t.Fatal("Not wrong")
		}
	}
	b.RowClone(1, 5)
	clone := b.ReadRow(5)
	for i := range clone {
		if clone[i] != rb[i] {
			t.Fatal("RowClone wrong")
		}
	}
	s := b.Stats()
	if s.MajOps != 1 || s.NotOps != 1 || s.RowClones != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Time != 3*testConfig().Tbbop {
		t.Fatalf("time = %v", s.Time)
	}
}

func TestBitSerialAdd32(t *testing.T) {
	b := NewBank(testConfig())
	src := rng.NewSourceFromString("pum-add")
	n := 100
	a := make([]uint32, n)
	c := make([]uint32, n)
	for i := range a {
		a[i] = uint32(src.Uint64())
		c[i] = uint32(src.Uint64())
	}
	if err := b.WriteVertical(100, a); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteVertical(200, c); err != nil {
		t.Fatal(err)
	}
	got := b.Add32(100, 200, 300, n)
	for i := range a {
		if got[i] != a[i]+c[i] {
			t.Fatalf("lane %d: %d + %d != %d", i, a[i], c[i], got[i])
		}
	}
}

func TestBitSerialAddCarryEdge(t *testing.T) {
	b := NewBank(testConfig())
	a := []uint32{0xFFFFFFFF, 0x80000000, 0x7FFFFFFF}
	c := []uint32{1, 0x80000000, 1}
	b.WriteVertical(0, a)
	b.WriteVertical(32, c)
	got := b.Add32(0, 32, 64, 3)
	want := []uint32{0, 0, 0x80000000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lane %d: got %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestAddOpCountsMatchModel(t *testing.T) {
	b := NewBank(testConfig())
	b.WriteVertical(0, []uint32{1})
	b.WriteVertical(32, []uint32{2})
	b.ResetStats()
	b.BitSerialAdd32(0, 32, 64)
	s := b.Stats()
	if s.MajOps != 32*3 || s.NotOps != 32*2 {
		t.Fatalf("bulk ops %+v, want 3 MAJ + 2 NOT per bit", s)
	}
	if s.MajOps+s.NotOps != 32*AddBbopsPerBit {
		t.Fatalf("bbop count inconsistent with AddBbopsPerBit")
	}
	// 3 RowClones per bit plus the initial carry reset.
	if s.RowClones != 32*AddRowClonesPerBit+1 {
		t.Fatalf("RowClones = %d, want %d", s.RowClones, 32*AddRowClonesPerBit+1)
	}
}

func TestAddProperty(t *testing.T) {
	b := NewBank(testConfig())
	f := func(a, c []uint32) bool {
		if len(a) == 0 {
			return true
		}
		if len(a) > b.cfg.RowBits() {
			a = a[:b.cfg.RowBits()]
		}
		if len(c) < len(a) {
			tmp := make([]uint32, len(a))
			copy(tmp, c)
			c = tmp
		}
		c = c[:len(a)]
		b.WriteVertical(0, a)
		b.WriteVertical(32, c)
		got := b.Add32(0, 32, 64, len(a))
		for i := range a {
			if got[i] != a[i]+c[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteRowValidation(t *testing.T) {
	b := NewBank(testConfig())
	if err := b.WriteRow(0, make([]uint64, 1)); err == nil {
		t.Error("accepted short row")
	}
	if err := b.WriteVertical(0, make([]uint32, b.cfg.RowBits()+1)); err == nil {
		t.Error("accepted too many lanes")
	}
}
