package pum

import (
	"fmt"

	"ciphermatch/internal/mathutil"
)

// Row-layout convention for bit-serial addition: operand A's bit i lives in
// row rowA+i, operand B's bit i in row rowB+i, and the sum's bit i is
// produced in row rowSum+i — the vertical layout of SIMDRAM [49], mirroring
// the flash adder. Scratch rows host the carry and intermediates.
const (
	scratchCarry   = -1 // Cin
	scratchNotCin  = -2
	scratchT1      = -3 // MAJ(A,B,NOT(Cin))
	scratchCout    = -4
	scratchNotCout = -5
	scratchZero    = -6
	scratchA       = -7
	scratchB       = -8
)

// BitSerialAdd32 adds the 32-bit vertically-laid-out operands at rowA and
// rowB into rowSum, every lane of the row in parallel, mod 2^32. It uses
// the majority full adder:
//
//	Cout = MAJ(A, B, Cin)
//	S    = MAJ(NOT(Cout), MAJ(A, B, NOT(Cin)), Cin)
func (b *Bank) BitSerialAdd32(rowA, rowB, rowSum int) {
	// Carry starts at zero.
	b.row(scratchZero)
	b.RowClone(scratchZero, scratchCarry)
	for i := 0; i < 32; i++ {
		b.RowClone(rowA+i, scratchA)
		b.RowClone(rowB+i, scratchB)
		b.Maj3(scratchA, scratchB, scratchCarry, scratchCout)
		b.Not(scratchCarry, scratchNotCin)
		b.Maj3(scratchA, scratchB, scratchNotCin, scratchT1)
		b.Not(scratchCout, scratchNotCout)
		b.Maj3(scratchNotCout, scratchT1, scratchCarry, rowSum+i)
		b.RowClone(scratchCout, scratchCarry)
	}
}

// WriteVertical stores coeffs (one 32-bit value per lane) into 32
// consecutive rows starting at rowBase, in vertical layout.
func (b *Bank) WriteVertical(rowBase int, coeffs []uint32) error {
	if len(coeffs) > b.cfg.RowBits() {
		return fmt.Errorf("pum: %d coefficients exceed %d row lanes", len(coeffs), b.cfg.RowBits())
	}
	planes := make([][]uint64, 32)
	for i := range planes {
		planes[i] = make([]uint64, b.words)
	}
	mathutil.TransposeToBitPlanes(coeffs, planes)
	for i := 0; i < 32; i++ {
		if err := b.WriteRow(rowBase+i, planes[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadVertical reads numCoeffs coefficients from the vertical layout at
// rowBase.
func (b *Bank) ReadVertical(rowBase, numCoeffs int) []uint32 {
	planes := make([][]uint64, 32)
	for i := 0; i < 32; i++ {
		planes[i] = b.ReadRow(rowBase + i)
	}
	coeffs := make([]uint32, numCoeffs)
	mathutil.TransposeFromBitPlanes(planes, coeffs)
	return coeffs
}

// Add32 is the convenience form: adds the vertical operands at rowA and
// rowB and returns the first numCoeffs lane sums.
func (b *Bank) Add32(rowA, rowB, rowSum, numCoeffs int) []uint32 {
	b.BitSerialAdd32(rowA, rowB, rowSum)
	return b.ReadVertical(rowSum, numCoeffs)
}
