package analysis

import (
	"fmt"
	"sort"
)

// Run executes every analyzer over every package, applies //cm:allow
// suppressions, and returns the surviving findings sorted by position.
func Run(pkgs []*Package, dirs *Directives, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Dirs:      dirs,
				report: func(d Diagnostic) {
					diags = append(diags, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	kept := diags[:0]
	seen := make(map[string]bool)
	for _, d := range diags {
		if dirs.Allowed(d.Analyzer, d.Pos.Filename, d.Pos.Line) {
			continue
		}
		if key := d.String(); !seen[key] {
			seen[key] = true
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}
