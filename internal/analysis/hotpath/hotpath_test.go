package hotpath_test

import (
	"testing"

	"ciphermatch/internal/analysis/atest"
	"ciphermatch/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	atest.Run(t, "testdata/hotpath", hotpath.Analyzer)
}
