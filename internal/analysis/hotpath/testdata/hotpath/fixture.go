// Package fixture exercises the hotpath analyzer: annotated kernels
// that follow the alloc-free discipline pass, each forbidden construct
// is flagged.
package fixture

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

//cm:hotpath
func kernelGood(a, b []uint64, out []uint64, q uint64) {
	for i := range a {
		t := a[i] + b[i]
		t -= q & (((t - q) >> 63) - 1)
		out[i] = t ^ uint64(bits.OnesCount64(t))
	}
}

//cm:hotpath
func helper(x uint64) uint64 { return x + 1 }

//cm:hotpath
func callsHotpath(x uint64) uint64 { return helper(x) }

func plain(x uint64) uint64 { return x }

//cm:hotpath
func callsPlain(x uint64) uint64 {
	return plain(x) // want `calls non-hotpath function plain`
}

//cm:hotpath
func allocates(n int) int {
	s := make([]uint64, n) // want `heap-allocates via make`
	s = append(s, 1)       // want `heap-allocates via append`
	p := new(uint64)       // want `heap-allocates via new`
	return len(s) + int(*p)
}

//cm:hotpath
func closes(x int) func() int {
	return func() int { return x } // want `contains a closure`
}

//cm:hotpath
func defers() {
	defer plain(0) // want `uses defer` `calls non-hotpath function plain`
}

//cm:hotpath
func spawns() {
	go helper(1) // want `spawns a goroutine`
}

//cm:hotpath
func mapping(m map[int]int, k int) int {
	return m[k] // want `accesses a map`
}

//cm:hotpath
func asserts(v any) int {
	return v.(int) // want `performs a type assertion`
}

//cm:hotpath
func concats(a, b string) string {
	return a + b // want `concatenates strings`
}

//cm:hotpath
func prints(x int) {
	fmt.Println(x) // want `calls fmt.Println` `passes a concrete value as interface argument`
}

//cm:hotpath
func converts(s string) int {
	b := []byte(s) // want `converts between string and \[\]byte`
	return len(b)
}

//cm:hotpath
func boxes(x int) any {
	return any(x) // want `converts to an interface`
}

//cm:hotpath
func indirect(x uint64) uint64 {
	f := helper
	return f(x) // want `calls through a function value`
}

//cm:hotpath
func composite() [2]uint64 {
	return [2]uint64{1, 2} // want `builds a composite literal`
}

//cm:hotpath
func suppressed(n int) []uint64 {
	//cm:allow hotpath -- setup path, measured cold
	return make([]uint64, n)
}

// The kernel dispatch shape: an atomic load of the active-path word
// selecting between hotpath implementations. sync/atomic is on the
// callee whitelist (a Load is one MOV, never an allocation), so this
// produces no diagnostics.
var activePath atomic.Uint32

//cm:hotpath
func dispatches(a, b, out []uint64, q uint64) {
	switch activePath.Load() {
	case 1:
		kernelGood(a, b, out, q)
	default:
		kernelGood(a, b, out, q)
	}
}

// An assembly stub: a body-less declaration may carry //cm:hotpath in
// its doc comment, satisfying the callee check for hotpath callers
// while the body checks skip it (there is no Go body to inspect).
//
//cm:hotpath
func asmStub(dst, a *uint64, q uint64)

//cm:hotpath
func callsAsmStub(dst, a []uint64, q uint64) {
	asmStub(&dst[0], &a[0], q)
}
