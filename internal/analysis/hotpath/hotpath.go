// Package hotpath checks that functions marked //cm:hotpath — the
// fused ring kernels and the engine inner loop — contain no heap
// allocation, no map traffic, no defers/goroutines/channel operations,
// no fmt/log calls, and no calls into functions that are not themselves
// hotpath (or on the small pure-arithmetic whitelist). The invariant
// exists because the search kernels' performance contract is "one
// streaming pass, zero allocations" (pinned dynamically by the
// AllocsPerRun tests); a refactor that reintroduces an append or an
// interface box silently turns the per-chunk loop into a GC workload.
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"ciphermatch/internal/analysis"
)

// Analyzer is the hotpath purity checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "reject allocation, map ops, defers and non-hotpath calls inside //cm:hotpath functions",
	Run:  run,
}

// calleeWhitelist lists packages whose functions are pure register
// arithmetic and may be called from hotpath code without annotation.
// sync/atomic is included for the kernel dispatch layer: reading the
// active-path word (atomic.Uint32.Load) is one MOV on every supported
// architecture, never an allocation or a lock.
var calleeWhitelist = map[string]bool{
	"math/bits":   true,
	"math":        true,
	"sync/atomic": true,
}

// allowedBuiltins are the builtins that never allocate.
var allowedBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "clear": true,
	"min": true, "max": true, "panic": true, "print": true,
	"imag": true, "real": true,
}

func run(pass *analysis.Pass) error {
	for fd := range analysis.HotpathFuncs(pass) {
		checkBody(pass, fd)
	}
	return nil
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hotpath function %s contains a closure (heap-allocates its captures)", fd.Name.Name)
			return false
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "hotpath function %s uses defer", fd.Name.Name)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "hotpath function %s spawns a goroutine", fd.Name.Name)
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "hotpath function %s uses select", fd.Name.Name)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "hotpath function %s sends on a channel", fd.Name.Name)
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Reportf(n.Pos(), "hotpath function %s receives from a channel", fd.Name.Name)
			}
		case *ast.CompositeLit:
			pass.Reportf(n.Pos(), "hotpath function %s builds a composite literal (may heap-allocate)", fd.Name.Name)
		case *ast.MapType:
			pass.Reportf(n.Pos(), "hotpath function %s declares a map", fd.Name.Name)
		case *ast.TypeAssertExpr:
			pass.Reportf(n.Pos(), "hotpath function %s performs a type assertion", fd.Name.Name)
		case *ast.IndexExpr:
			if analysis.IsMap(analysis.TypeOf(info, n.X)) {
				pass.Reportf(n.Pos(), "hotpath function %s accesses a map", fd.Name.Name)
			}
		case *ast.RangeStmt:
			if analysis.IsMap(analysis.TypeOf(info, n.X)) {
				pass.Reportf(n.Pos(), "hotpath function %s ranges over a map", fd.Name.Name)
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if t := analysis.TypeOf(info, n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(), "hotpath function %s concatenates strings (allocates)", fd.Name.Name)
					}
				}
			}
		case *ast.CallExpr:
			checkCall(pass, fd, n)
		}
		return true
	})
	// Interface boxing through assignments and call arguments: a
	// concrete value assigned into an interface-typed slot allocates.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if analysis.IsConversion(info, call) && len(call.Args) == 1 {
			to := analysis.TypeOf(info, call.Fun)
			from := analysis.TypeOf(info, call.Args[0])
			if analysis.IsInterface(to) && !analysis.IsInterface(from) {
				pass.Reportf(call.Pos(), "hotpath function %s converts to an interface (boxes)", fd.Name.Name)
			}
			return true
		}
		sig, _ := analysis.TypeOf(info, call.Fun).(*types.Signature)
		if sig == nil {
			return true
		}
		for i, arg := range call.Args {
			var pt types.Type
			if sig.Variadic() && i >= sig.Params().Len()-1 {
				if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
					pt = s.Elem()
				}
			} else if i < sig.Params().Len() {
				pt = sig.Params().At(i).Type()
			}
			if analysis.IsInterface(pt) && !analysis.IsInterface(analysis.TypeOf(info, arg)) {
				pass.Reportf(arg.Pos(), "hotpath function %s passes a concrete value as interface argument (boxes)", fd.Name.Name)
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	if b := analysis.BuiltinName(info, call); b != "" {
		switch b {
		case "make", "new", "append":
			pass.Reportf(call.Pos(), "hotpath function %s heap-allocates via %s", fd.Name.Name, b)
		case "delete":
			pass.Reportf(call.Pos(), "hotpath function %s deletes from a map", fd.Name.Name)
		default:
			if !allowedBuiltins[b] {
				pass.Reportf(call.Pos(), "hotpath function %s calls builtin %s", fd.Name.Name, b)
			}
		}
		return
	}
	if analysis.IsConversion(info, call) {
		// Conversions are handled by the boxing pass; []byte(s) and
		// string(b) allocate.
		if len(call.Args) == 1 {
			to := analysis.TypeOf(info, call.Fun)
			from := analysis.TypeOf(info, call.Args[0])
			if isStringByteConv(to, from) {
				pass.Reportf(call.Pos(), "hotpath function %s converts between string and []byte (allocates)", fd.Name.Name)
			}
		}
		return
	}
	fn := analysis.Callee(info, call)
	if fn == nil {
		pass.Reportf(call.Pos(), "hotpath function %s calls through a function value", fd.Name.Name)
		return
	}
	if pkg := fn.Pkg(); pkg != nil {
		path := pkg.Path()
		if path == "fmt" || path == "log" || strings.HasPrefix(path, "log/") {
			pass.Reportf(call.Pos(), "hotpath function %s calls %s.%s", fd.Name.Name, path, fn.Name())
			return
		}
		if calleeWhitelist[path] {
			return
		}
	}
	if !pass.Dirs.Hotpath(analysis.FuncFullName(fn)) {
		pass.Reportf(call.Pos(), "hotpath function %s calls non-hotpath function %s", fd.Name.Name, fn.Name())
	}
}

func isStringByteConv(to, from types.Type) bool {
	return (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}
