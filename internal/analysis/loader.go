package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// exportLookup adapts an importpath→exportfile map to the lookup
// signature of the stdlib gc importer.
func exportLookup(exports map[string]string, importMap map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// goList runs `go list -export -deps -json` over the given patterns in
// dir and returns the decoded package stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list failed: %v\n%s", err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadModule loads and type-checks the packages matching patterns
// (default ./...) in the module containing dir, plus a directive table
// scanned over every module package (dependencies included, so
// cross-package //cm:hotpath and //cm:pooled marks resolve). Package
// dependencies are imported from `go list -export` gc export data, so
// only the analyzed packages themselves are type-checked from source.
func LoadModule(dir string, patterns ...string) ([]*Package, *Directives, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	exports := make(map[string]string)
	var moduleListed []listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && len(p.GoFiles) > 0 {
			moduleListed = append(moduleListed, p)
		}
	}
	sort.Slice(moduleListed, func(i, j int) bool {
		return moduleListed[i].ImportPath < moduleListed[j].ImportPath
	})

	fset := token.NewFileSet()
	dirs := NewDirectives()
	type parsed struct {
		listedPackage
		files []*ast.File
	}
	var all []parsed
	for _, p := range moduleListed {
		files, err := parseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, nil, err
		}
		for _, f := range files {
			dirs.AddFile(fset, p.ImportPath, f)
		}
		all = append(all, parsed{p, files})
	}

	imp := importer.ForCompiler(fset, "gc", exportLookup(exports, nil))
	var pkgs []*Package
	for _, p := range all {
		if p.DepOnly {
			continue
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, p.files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: type-checking %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  p.ImportPath,
			Dir:   p.Dir,
			Fset:  fset,
			Files: p.files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, dirs, nil
}

// LoadDir loads a single directory as an ad-hoc package outside any
// module — how analyzer test fixtures and seeded bad-fixture dirs are
// checked. Imports must resolve through the standard library; their
// export data comes from one `go list -export` over the fixture's
// import set.
func LoadDir(dir string) (*Package, *Directives, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: %v", err)
	}
	fset := token.NewFileSet()
	files, err := parseFiles(fset, bp.Dir, bp.GoFiles)
	if err != nil {
		return nil, nil, err
	}
	pkgPath := bp.Name
	dirs := NewDirectives()
	for _, f := range files {
		dirs.AddFile(fset, pkgPath, f)
	}

	exports := make(map[string]string)
	if len(bp.Imports) > 0 {
		listed, err := goList(dir, bp.Imports)
		if err != nil {
			return nil, nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", exportLookup(exports, nil))}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: type-checking %s: %v", dir, err)
	}
	return &Package{Path: pkgPath, Dir: bp.Dir, Fset: fset, Files: files, Types: tpkg, Info: info}, dirs, nil
}

// VetConfig is the JSON configuration `go vet -vettool` hands the tool
// for each package unit (the cmd/go vet protocol).
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// ReadVetConfig parses a vet .cfg file.
func ReadVetConfig(path string) (*VetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("analysis: parsing vet config %s: %v", path, err)
	}
	return cfg, nil
}

// LoadVetUnit type-checks the vet config's package against the export
// data the go command already built, and scans the enclosing module
// (found by walking up from cfg.Dir to go.mod) for the directive table
// so cross-package marks keep resolving under `go vet -vettool`.
func LoadVetUnit(cfg *VetConfig) (*Package, *Directives, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, gf := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", exportLookup(cfg.PackageFile, cfg.ImportMap))}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: type-checking %s: %v", cfg.ImportPath, err)
	}

	dirs := NewDirectives()
	if root, modPath, ok := findModule(cfg.Dir); ok {
		scanModuleDirectives(dirs, root, modPath)
	}
	// The unit's own files may include test files the module scan
	// skipped; fold their directives in too (idempotent).
	for _, f := range files {
		dirs.AddFile(fset, cfg.ImportPath, f)
	}
	return &Package{Path: cfg.ImportPath, Dir: cfg.Dir, Fset: fset, Files: files, Types: tpkg, Info: info}, dirs, nil
}

// parseFiles parses named files of one directory with comments.
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, ok bool) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", "", false
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, found := strings.CutPrefix(line, "module "); found {
					return dir, strings.TrimSpace(rest), true
				}
			}
			return "", "", false
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", false
		}
		dir = parent
	}
}

// scanModuleDirectives parse-only scans every buildable package under
// root into the directive table. Cheap (no type checking): it exists so
// a per-package vet unit still sees //cm:hotpath marks on functions in
// sibling packages.
func scanModuleDirectives(dirs *Directives, root, modPath string) {
	fset := token.NewFileSet()
	filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") {
			return filepath.SkipDir
		}
		bp, err := build.ImportDir(path, 0)
		if err != nil {
			return nil // no buildable files here
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return nil
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		for _, name := range bp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(path, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				continue
			}
			dirs.AddFile(fset, pkgPath, f)
		}
		return nil
	})
}
