package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the function or method object a call expression
// invokes, nil for calls through function values, builtins and
// conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// BuiltinName returns the name of the builtin a call invokes ("make",
// "len", ...), or "" when the call is not a builtin.
func BuiltinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// IsConversion reports whether a call expression is a type conversion.
func IsConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// FuncDeclObj returns the *types.Func a declaration defines.
func FuncDeclObj(info *types.Info, fd *ast.FuncDecl) *types.Func {
	fn, _ := info.Defs[fd.Name].(*types.Func)
	return fn
}

// HotpathFuncs yields every function declaration in the pass marked
// //cm:hotpath, with its resolved object. Body-less declarations
// (assembly stubs) are excluded by rule: there is no Go body for the
// body checks to inspect, but their //cm:hotpath doc directive still
// registers in pass.Dirs, so hotpath callers of a marked stub pass the
// callee check. The stub's actual discipline is enforced downstream by
// the per-path AllocsPerRun pins and the differential fuzzer.
func HotpathFuncs(pass *Pass) map[*ast.FuncDecl]*types.Func {
	out := make(map[*ast.FuncDecl]*types.Func)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := FuncDeclObj(pass.TypesInfo, fd)
			if fn == nil {
				continue
			}
			if pass.Dirs.Hotpath(FuncFullName(fn)) {
				out[fd] = fn
			}
		}
	}
	return out
}

// IsInterface reports whether t's underlying type is an interface.
func IsInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// IsMap reports whether t's underlying type is a map.
func IsMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// TypeOf is a nil-tolerant Info.TypeOf.
func TypeOf(info *types.Info, e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	return info.TypeOf(e)
}
