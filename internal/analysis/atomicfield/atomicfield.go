// Package atomicfield enforces all-or-nothing atomicity on struct
// fields: a field that is accessed through sync/atomic package
// functions anywhere in the package (atomic.AddInt64(&s.n, 1), ...)
// must be accessed through sync/atomic everywhere — one plain load or
// store silently turns every "atomic" counter read into a data race the
// race detector only catches if a test happens to interleave it.
//
// Fields of the typed atomic.Int64/Uint64/... wrappers are immune by
// construction (the type system already forbids plain access) and never
// enter the tracked set; the analyzer exists for the mixed style, where
// a plain int64 field is atomically accessed in one place and casually
// read in another. Intentional pre-publication plain access (struct
// setup before the value is shared) is suppressed with
// //cm:allow atomicfield.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"ciphermatch/internal/analysis"
)

// Analyzer is the mixed atomic/plain field access checker.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "flag plain accesses to struct fields that are elsewhere accessed via sync/atomic",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Pass 1: collect fields whose address is taken for a sync/atomic
	// call, and remember those argument expressions so pass 2 does not
	// flag the atomic sites themselves.
	atomicFields := make(map[*types.Var]bool)
	atomicSites := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fld := fieldOf(info, sel); fld != nil {
					atomicFields[fld] = true
					atomicSites[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: any other selection of those fields is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSites[sel] {
				return true
			}
			fld := fieldOf(info, sel)
			if fld == nil || !atomicFields[fld] {
				return true
			}
			pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere; this plain access races", fld.Name())
			return true
		})
	}
	return nil
}

// fieldOf resolves a selector expression to the struct field it selects,
// nil when it selects something else (method, package member, ...).
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}
