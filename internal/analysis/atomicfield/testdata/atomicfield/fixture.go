// Package fixture exercises the atomicfield analyzer: fields accessed
// through sync/atomic functions anywhere must be accessed that way
// everywhere; typed atomics and consistently-plain fields pass.
package fixture

import "sync/atomic"

type counters struct {
	hits  int64
	typed atomic.Int64
	plain int64
}

func (c *counters) incr() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) read() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) badRead() int64 {
	return c.hits // want `accessed with sync/atomic elsewhere; this plain access races`
}

func (c *counters) badWrite() {
	c.hits = 0 // want `accessed with sync/atomic elsewhere; this plain access races`
}

func (c *counters) goodTyped() int64 {
	c.typed.Add(1)
	return c.typed.Load()
}

func (c *counters) goodPlain() int64 {
	c.plain++
	return c.plain
}

func (c *counters) allowedReset() {
	//cm:allow atomicfield -- pre-publication reset, no concurrent readers yet
	c.hits = 0
}
