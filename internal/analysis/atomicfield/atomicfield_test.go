package atomicfield_test

import (
	"testing"

	"ciphermatch/internal/analysis/atest"
	"ciphermatch/internal/analysis/atomicfield"
)

func TestAtomicfield(t *testing.T) {
	atest.Run(t, "testdata/atomicfield", atomicfield.Analyzer)
}
