// Package fixture exercises the wiresize analyzer: allocations sized by
// raw wire reads are flagged, count()-bounded and comparison-checked
// sizes pass.
package fixture

import (
	"encoding/binary"
	"errors"
)

var errTooBig = errors.New("too big")

type buffer struct {
	data []byte
	off  int
}

func (b *buffer) uint32() uint32 {
	v := binary.LittleEndian.Uint32(b.data[b.off:])
	b.off += 4
	return v
}

// count reads an element count and bounds it by the bytes remaining —
// the sanctioned pattern.
func (b *buffer) count(elemBytes int) (int, error) {
	n := int(b.uint32())
	if n < 0 || n > (len(b.data)-b.off)/elemBytes {
		return 0, errTooBig
	}
	return n, nil
}

func decodeBad(b *buffer) []uint64 {
	n := int(b.uint32())
	return make([]uint64, n) // want `derives from a wire-read value`
}

func decodeDerivedBad(b *buffer) []byte {
	n := int(b.uint32())
	sz := n * 8
	return make([]byte, sz) // want `derives from a wire-read value`
}

func decodeRawBad(data []byte) []byte {
	n := binary.BigEndian.Uint64(data)
	return make([]byte, n) // want `derives from a wire-read value`
}

func decodeCounted(b *buffer) ([]uint64, error) {
	n, err := b.count(8)
	if err != nil {
		return nil, err
	}
	return make([]uint64, n), nil
}

func decodeChecked(b *buffer) []uint64 {
	n := int(b.uint32())
	if n > 1024 {
		return nil
	}
	return make([]uint64, n)
}

func decodeClamped(b *buffer) []uint64 {
	n := int(b.uint32())
	n = min(n, 1024)
	return make([]uint64, n)
}

func decodeAllowed(b *buffer) []byte {
	n := int(b.uint32())
	//cm:allow wiresize -- trusted local snapshot format, size validated by outer checksum
	return make([]byte, n)
}

// capOnlyBad: the capacity operand is attacker-sized even though the
// length is constant.
func capOnlyBad(b *buffer) []byte {
	n := int(b.uint32())
	return make([]byte, 0, n) // want `derives from a wire-read value`
}

// decodeExactLen: the exact-length idiom — the count is validated by
// requiring the payload to be exactly the implied size, with the
// tainted variable nested inside the comparison's arithmetic.
func decodeExactLen(data []byte) []uint64 {
	n := int(binary.LittleEndian.Uint32(data))
	if len(data) != 4+8*n {
		return nil
	}
	return make([]uint64, n)
}

// untaintedOK: sizes with no wire provenance never trip the analyzer.
func untaintedOK(k int) []byte {
	return make([]byte, k)
}
