// Package wiresize guards the decoders against allocation-amplification
// payloads: any integer read off the wire (encoding/binary reads, the
// proto buffer-cursor accessors) is attacker-controlled, and using it as
// a make() size lets a few bytes of payload demand gigabytes of heap.
// The sanctioned patterns are the division-bounded count() accessor —
// which caps an element count by the bytes actually remaining in the
// payload — and an explicit comparison against a bound before the
// allocation.
//
// The walk is intra-procedural and flow-insensitive: values assigned
// from wire-read calls are tainted, taint propagates through arithmetic,
// conversions and re-assignment, and a tainted variable is cleansed if
// it came from count() or appears anywhere in a comparison. A make()
// whose size operand is still tainted is reported. Flow-insensitivity
// means a bound check anywhere in the function sanitises — deliberately
// forgiving, so every report is worth reading.
package wiresize

import (
	"go/ast"
	"go/token"
	"go/types"

	"ciphermatch/internal/analysis"
)

// Analyzer is the wire-length bounds checker.
var Analyzer = &analysis.Analyzer{
	Name: "wiresize",
	Doc:  "flag make() sizes derived from wire-read integers without a bound check",
	Run:  run,
}

// wireReadNames are function/method names whose integer results come
// straight off the wire: the encoding/binary accessors and the repo's
// proto buffer-cursor readers.
var wireReadNames = map[string]bool{
	"int": true, "uint16": true, "uint32": true, "uint64": true,
	"varint": true, "uvarint": true,
	"Uint16": true, "Uint32": true, "Uint64": true,
	"Varint": true, "Uvarint": true,
	"ReadVarint": true, "ReadUvarint": true,
}

// sanitizerNames are accessors whose results are already bounded by
// construction (count caps by remaining payload bytes / element size).
var sanitizerNames = map[string]bool{
	"count": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	tainted := make(map[types.Object]bool)
	sanitized := make(map[types.Object]bool)

	// callKind classifies a call: wire-read source, sanitizer, or
	// neither. Conversions are neither — int(x) must not match the
	// buffer cursor's int() accessor.
	callKind := func(call *ast.CallExpr) (source, sanitizer bool) {
		if analysis.IsConversion(info, call) {
			return false, false
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		default:
			return false, false
		}
		if fn := analysis.Callee(info, call); fn != nil {
			if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "encoding/binary" {
				return wireReadNames[name], false
			}
		}
		return wireReadNames[name], sanitizerNames[name]
	}

	// exprTainted reports whether e's value derives from an unsanitised
	// wire read: a direct source call, or arithmetic over tainted
	// variables.
	var exprTainted func(e ast.Expr) bool
	exprTainted = func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.Ident:
				if obj := info.Uses[n]; obj != nil && tainted[obj] && !sanitized[obj] {
					found = true
				}
			case *ast.CallExpr:
				if src, _ := callKind(n); src {
					found = true
					return false
				}
				if analysis.IsConversion(info, n) {
					return true // conversions propagate taint
				}
				return false // other calls return clean values
			}
			return true
		})
		return found
	}

	assignObj := func(id *ast.Ident) types.Object {
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}

	// Propagate taint and collect sanitising comparisons to a fixpoint.
	for {
		changed := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				// Tuple form n, err := b.count(8) / n, err := b.int():
				// classify once, apply to the non-error results.
				if len(n.Rhs) == 1 {
					if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
						src, san := callKind(call)
						if src || san {
							for _, lhs := range n.Lhs {
								id, ok := ast.Unparen(lhs).(*ast.Ident)
								if !ok || id.Name == "_" {
									continue
								}
								obj := assignObj(id)
								if obj == nil || isErrorType(obj.Type()) {
									continue
								}
								if san && !sanitized[obj] {
									sanitized[obj] = true
									changed = true
								}
								if src && !tainted[obj] {
									tainted[obj] = true
									changed = true
								}
							}
							return true
						}
					}
				}
				for i, lhs := range n.Lhs {
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0]
					}
					if rhs == nil {
						continue
					}
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := assignObj(id)
					if obj == nil {
						continue
					}
					if exprTainted(rhs) && !tainted[obj] {
						tainted[obj] = true
						changed = true
					}
				}
			case *ast.BinaryExpr:
				// A comparison mentioning the tainted variable counts
				// as its bound check, even nested in arithmetic
				// (`len(data) != 4+8*n` is the exact-length idiom).
				switch n.Op {
				case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
					for _, side := range [2]ast.Expr{n.X, n.Y} {
						ast.Inspect(side, func(m ast.Node) bool {
							id, ok := m.(*ast.Ident)
							if !ok {
								return true
							}
							if obj := info.Uses[id]; obj != nil && tainted[obj] && !sanitized[obj] {
								sanitized[obj] = true
								changed = true
							}
							return true
						})
					}
				}
			case *ast.CallExpr:
				// min(n, bound) cleanses too.
				if analysis.BuiltinName(info, n) == "min" {
					for _, arg := range n.Args {
						if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
							if obj := info.Uses[id]; obj != nil && tainted[obj] && !sanitized[obj] {
								sanitized[obj] = true
								changed = true
							}
						}
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	// Report makes whose length or capacity operand is still tainted.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || analysis.BuiltinName(info, call) != "make" {
			return true
		}
		for _, sizeArg := range call.Args[1:] {
			if exprTainted(sizeArg) {
				pass.Reportf(sizeArg.Pos(), "make size in %s derives from a wire-read value with no bound check", fd.Name.Name)
			}
		}
		return true
	})
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
