package wiresize_test

import (
	"testing"

	"ciphermatch/internal/analysis/atest"
	"ciphermatch/internal/analysis/wiresize"
)

func TestWiresize(t *testing.T) {
	atest.Run(t, "testdata/wiresize", wiresize.Analyzer)
}
