// Package fixture exercises the ctbranch analyzer: branchless
// mask-based kernels pass, data-dependent control flow and indexing on
// slice-parameter contents is flagged.
package fixture

//cm:hotpath
func ctGood(a, d []uint64, bits []uint64, q uint64) {
	for i := range a {
		t := a[i] - d[i]
		t -= q & (((t - q) >> 63) - 1)
		m := ((t | -t) >> 63) ^ 1
		bits[i>>6] |= m << uint(i&63)
	}
}

//cm:hotpath
func ctBadBranch(a, d []uint64, bits []uint64) {
	for i := range a {
		if a[i] == d[i] { // want `branch condition .* depends on ciphertext-derived data`
			bits[i>>6] |= 1 << uint(i&63)
		}
	}
}

//cm:hotpath
func ctBadIndex(a, lut []uint64) uint64 {
	var acc uint64
	for i := range a {
		acc ^= lut[a[i]&255] // want `index .* depends on ciphertext-derived data`
	}
	return acc
}

//cm:hotpath
func ctBadPropagated(a []uint64) int {
	t := a[0]
	u := t ^ 42
	if u > 7 { // want `branch condition .* depends on ciphertext-derived data`
		return 1
	}
	return 0
}

//cm:hotpath
func ctBadAlias(a []uint64) int {
	w := a[:8]
	n := 0
	for _, v := range w {
		if v != 0 { // want `branch condition .* depends on ciphertext-derived data`
			n++
		}
	}
	return n
}

//cm:hotpath
func ctBadSwitch(a []uint64) int {
	switch a[0] { // want `switch tag .* depends on ciphertext-derived data`
	case 0:
		return 1
	}
	return 0
}

//cm:hotpath
func ctBadShortCircuit(a []uint64, ok bool) bool {
	return ok && a[0] == 1 // want `short-circuit operator .* evaluates ciphertext-derived data`
}

//cm:hotpath
func ctBadLocalBuf(a []uint64) int {
	var diff [4]uint64
	for i := range diff {
		diff[i] = a[i]
	}
	if diff[0] == 0 { // want `branch condition .* depends on ciphertext-derived data`
		return 1
	}
	return 0
}

//cm:hotpath
func ctAllowed(a []uint64, bits []uint64) {
	var w uint64
	for i := range a {
		w |= a[i]
	}
	//cm:allow ctbranch -- aggregated hit-word store elision: only reveals word-granular nonzero, by design
	if w != 0 {
		bits[0] |= w
	}
}

// ctLoopBoundsOK: loop structure over len() and untainted indices never
// trips the analyzer.
//
//cm:hotpath
func ctLoopBoundsOK(a []uint64, out []uint64) {
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		out[i] = a[i]
	}
}

// ctUnrolledLanes is the multi-lane kernel shape of the vectorized
// rewrite: three-index re-slices, eight branchless compare lanes folded
// into a group word with constant shifts, and the word-granular store
// elision under //cm:allow. The lane arithmetic itself must never trip
// the analyzer — only the allowed aggregated store may branch.
//
//cm:hotpath
func ctUnrolledLanes(a, d []uint64, bits []uint64) {
	n := len(a) &^ 63
	for i := 0; i < n; i += 64 {
		var w uint64
		for k := 0; k < 64; k += 8 {
			a8 := a[i+k : i+k+8 : i+k+8]
			d8 := d[i+k : i+k+8 : i+k+8]
			g := eqLane(a8[0], d8[0]) |
				eqLane(a8[1], d8[1])<<1 |
				eqLane(a8[2], d8[2])<<2 |
				eqLane(a8[3], d8[3])<<3 |
				eqLane(a8[4], d8[4])<<4 |
				eqLane(a8[5], d8[5])<<5 |
				eqLane(a8[6], d8[6])<<6 |
				eqLane(a8[7], d8[7])<<7
			w |= g << uint(k)
		}
		//cm:allow ctbranch -- aggregated hit-word store elision: only reveals word-granular nonzero, by design
		if w != 0 {
			bits[i>>6] |= w
		}
	}
}

//cm:hotpath
func eqLane(x, y uint64) uint64 {
	z := x ^ y
	return ((z | -z) >> 63) ^ 1
}
