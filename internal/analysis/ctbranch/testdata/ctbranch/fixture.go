// Package fixture exercises the ctbranch analyzer: branchless
// mask-based kernels pass, data-dependent control flow and indexing on
// slice-parameter contents is flagged.
package fixture

//cm:hotpath
func ctGood(a, d []uint64, bits []uint64, q uint64) {
	for i := range a {
		t := a[i] - d[i]
		t -= q & (((t - q) >> 63) - 1)
		m := ((t | -t) >> 63) ^ 1
		bits[i>>6] |= m << uint(i&63)
	}
}

//cm:hotpath
func ctBadBranch(a, d []uint64, bits []uint64) {
	for i := range a {
		if a[i] == d[i] { // want `branch condition .* depends on ciphertext-derived data`
			bits[i>>6] |= 1 << uint(i&63)
		}
	}
}

//cm:hotpath
func ctBadIndex(a, lut []uint64) uint64 {
	var acc uint64
	for i := range a {
		acc ^= lut[a[i]&255] // want `index .* depends on ciphertext-derived data`
	}
	return acc
}

//cm:hotpath
func ctBadPropagated(a []uint64) int {
	t := a[0]
	u := t ^ 42
	if u > 7 { // want `branch condition .* depends on ciphertext-derived data`
		return 1
	}
	return 0
}

//cm:hotpath
func ctBadAlias(a []uint64) int {
	w := a[:8]
	n := 0
	for _, v := range w {
		if v != 0 { // want `branch condition .* depends on ciphertext-derived data`
			n++
		}
	}
	return n
}

//cm:hotpath
func ctBadSwitch(a []uint64) int {
	switch a[0] { // want `switch tag .* depends on ciphertext-derived data`
	case 0:
		return 1
	}
	return 0
}

//cm:hotpath
func ctBadShortCircuit(a []uint64, ok bool) bool {
	return ok && a[0] == 1 // want `short-circuit operator .* evaluates ciphertext-derived data`
}

//cm:hotpath
func ctBadLocalBuf(a []uint64) int {
	var diff [4]uint64
	for i := range diff {
		diff[i] = a[i]
	}
	if diff[0] == 0 { // want `branch condition .* depends on ciphertext-derived data`
		return 1
	}
	return 0
}

//cm:hotpath
func ctAllowed(a []uint64, bits []uint64) {
	var w uint64
	for i := range a {
		w |= a[i]
	}
	//cm:allow ctbranch -- aggregated hit-word store elision: only reveals word-granular nonzero, by design
	if w != 0 {
		bits[0] |= w
	}
}

// ctLoopBoundsOK: loop structure over len() and untainted indices never
// trips the analyzer.
//
//cm:hotpath
func ctLoopBoundsOK(a []uint64, out []uint64) {
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		out[i] = a[i]
	}
}
