package ctbranch_test

import (
	"testing"

	"ciphermatch/internal/analysis/atest"
	"ciphermatch/internal/analysis/ctbranch"
)

func TestCtbranch(t *testing.T) {
	atest.Run(t, "testdata/ctbranch", ctbranch.Analyzer)
}
