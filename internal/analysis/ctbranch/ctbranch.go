// Package ctbranch enforces the constant-time discipline of the fused
// search kernels: inside a //cm:hotpath function, no branch condition
// and no index expression may data-flow from the contents of
// slice-typed parameters — the ciphertext coefficient planes the kernel
// streams. The kernels must compute hit bits with masks (the
// zero-stores-on-miss design), not with per-coefficient branches whose
// timing and store pattern leak which coefficients matched.
//
// The check is a conservative intra-procedural taint walk over the
// function's syntax (the repo's offline framework has no SSA): loads
// from slice/array parameters seed the taint set, assignments and
// slice aliases propagate it to a fixpoint, and any if/switch/for
// condition or index operand that ends up tainted is reported.
// Deliberate data-dependent sinks — the aggregated hit-word store
// elision (`if w != 0`) — carry //cm:allow ctbranch with a reason.
package ctbranch

import (
	"go/ast"
	"go/token"
	"go/types"

	"ciphermatch/internal/analysis"
)

// Analyzer is the constant-time branch checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctbranch",
	Doc:  "flag branches and variable-index loads on ciphertext-derived data in //cm:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for fd, fn := range analysis.HotpathFuncs(pass) {
		checkFunc(pass, fd, fn)
	}
	return nil
}

// checkFunc taints loads from slice parameters, propagates through
// local assignments and slice aliases to a fixpoint, then reports
// tainted control-flow conditions and indices.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, fn *types.Func) {
	info := pass.TypesInfo

	// secretSlices holds variables whose *elements* are secret: the
	// slice/array parameters themselves, aliases and re-slices of
	// them, and local buffers that tainted values were stored into.
	// tainted holds scalar locals carrying secret values.
	secretSlices := make(map[types.Object]bool)
	tainted := make(map[types.Object]bool)

	sig := fn.Type().(*types.Signature)
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		if isSliceLike(p.Type()) {
			secretSlices[p] = true
		}
	}
	if recv := sig.Recv(); recv != nil && isSliceLike(recv.Type()) {
		secretSlices[recv] = true
	}

	// exprTainted reports whether evaluating e observes secret data:
	// an element load from a secret slice, or a use of a tainted
	// local.
	var exprTainted func(e ast.Expr) bool
	exprTainted = func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.Ident:
				if obj := info.Uses[n]; obj != nil && tainted[obj] {
					found = true
				}
			case *ast.IndexExpr:
				if base := exprObj(info, n.X); base != nil && secretSlices[base] {
					found = true
				}
			case *ast.CallExpr:
				// Calls return untainted values (the walk is
				// intra-procedural), and len/cap observe structure,
				// not contents — skip the whole call. Conversions of
				// tainted operands stay tainted.
				if analysis.IsConversion(info, n) {
					return true
				}
				return false
			}
			return true
		})
		return found
	}

	// exprSecretSlice reports whether e evaluates to a slice view whose
	// elements are secret: a secret slice itself, or a re-slice of one.
	exprSecretSlice := func(e ast.Expr) bool {
		for {
			switch v := ast.Unparen(e).(type) {
			case *ast.Ident:
				obj := info.Uses[v]
				return obj != nil && secretSlices[obj]
			case *ast.SliceExpr:
				e = v.X
			case *ast.IndexExpr:
				// A row of a secret [][]T is itself secret-elemented.
				if base := exprObj(info, v.X); base != nil && secretSlices[base] {
					return true
				}
				return false
			default:
				return false
			}
		}
	}

	assignObj := func(id *ast.Ident) types.Object {
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}

	// Propagate to a fixpoint so chains resolve regardless of
	// statement order in loops.
	for {
		changed := false
		mark := func(m map[types.Object]bool, obj types.Object) {
			if obj != nil && !m[obj] {
				m[obj] = true
				changed = true
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0]
					}
					if rhs == nil {
						continue
					}
					switch l := ast.Unparen(lhs).(type) {
					case *ast.Ident:
						obj := assignObj(l)
						if obj == nil {
							continue
						}
						if exprSecretSlice(rhs) {
							mark(secretSlices, obj)
						}
						if exprTainted(rhs) {
							mark(tainted, obj)
						}
					case *ast.IndexExpr:
						// Storing a tainted value into a local buffer
						// makes that buffer's elements secret
						// (diff[k] = a[k] - d[k]).
						if exprTainted(rhs) || exprTainted(n.Rhs[0]) {
							mark(secretSlices, exprObj(info, l.X))
						}
					}
				}
			case *ast.RangeStmt:
				// for i, v := range p: the value is an element load,
				// the index is not.
				if n.Value != nil && exprSecretSlice(n.X) {
					if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok {
						mark(tainted, assignObj(id))
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	// Report tainted control flow and tainted indices.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if exprTainted(n.Cond) {
				pass.Reportf(n.Cond.Pos(), "branch condition in hotpath function %s depends on ciphertext-derived data", fd.Name.Name)
			}
		case *ast.ForStmt:
			if n.Cond != nil && exprTainted(n.Cond) {
				pass.Reportf(n.Cond.Pos(), "loop condition in hotpath function %s depends on ciphertext-derived data", fd.Name.Name)
			}
		case *ast.SwitchStmt:
			if n.Tag != nil && exprTainted(n.Tag) {
				pass.Reportf(n.Tag.Pos(), "switch tag in hotpath function %s depends on ciphertext-derived data", fd.Name.Name)
			}
			for _, clause := range n.Body.List {
				cc, ok := clause.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if exprTainted(e) {
						pass.Reportf(e.Pos(), "switch case in hotpath function %s depends on ciphertext-derived data", fd.Name.Name)
					}
				}
			}
		case *ast.IndexExpr:
			// A tainted index is a secret-dependent memory access (a
			// classic cache side channel) even without a branch.
			if exprTainted(n.Index) {
				pass.Reportf(n.Index.Pos(), "index in hotpath function %s depends on ciphertext-derived data", fd.Name.Name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.LAND || n.Op == token.LOR {
				// Short-circuit evaluation is a branch.
				if exprTainted(n.X) || exprTainted(n.Y) {
					pass.Reportf(n.Pos(), "short-circuit operator in hotpath function %s evaluates ciphertext-derived data", fd.Name.Name)
				}
			}
		}
		return true
	})
}

// exprObj resolves an expression to a variable object when it is a
// plain (possibly parenthesised) identifier.
func exprObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

func isSliceLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}
