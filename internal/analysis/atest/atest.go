// Package atest is the golden-test harness for cmvet analyzers, a
// small offline analogue of go/analysis/analysistest. A fixture is one
// directory of Go files (stdlib imports only) annotated with
// end-of-line expectations:
//
//	n := make([]byte, sz) // want `derives from a wire-read value`
//
// Run loads the directory as an ad-hoc package, executes the analyzer
// through the same driver cmvet uses (so //cm:allow suppression is
// exercised too), and fails the test for every diagnostic with no
// matching expectation and every expectation with no matching
// diagnostic.
package atest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ciphermatch/internal/analysis"
)

// expectation is one `// want` annotation: a line that must produce a
// diagnostic whose message matches the pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run checks one analyzer against the fixture directory.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg, dirs, err := analysis.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, dirs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWants(t, pkg, c)...)
			}
		}
	}

	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// parseWants extracts the expectations of one comment. The syntax is
// `// want` followed by one or more Go string literals (quoted or
// backquoted), each a regexp over the diagnostic message.
func parseWants(t *testing.T, pkg *analysis.Package, c *ast.Comment) []*expectation {
	t.Helper()
	text, ok := strings.CutPrefix(c.Text, "// want ")
	if !ok {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	var out []*expectation
	rest := strings.TrimSpace(text)
	for rest != "" {
		lit, remainder, err := cutStringLit(rest)
		if err != nil {
			t.Fatalf("%s:%d: bad want annotation: %v", pos.Filename, pos.Line, err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, lit, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
		rest = strings.TrimSpace(remainder)
	}
	return out
}

// cutStringLit splits one leading Go string literal off s.
func cutStringLit(s string) (lit, rest string, err error) {
	if s == "" {
		return "", "", fmt.Errorf("empty pattern")
	}
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated raw string in %q", s)
		}
		return s[1 : 1+end], s[2+end:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				lit, err := strconv.Unquote(s[:i+1])
				return lit, s[i+1:], err
			}
		}
		return "", "", fmt.Errorf("unterminated string in %q", s)
	default:
		return "", "", fmt.Errorf("pattern must be a string literal, got %q", s)
	}
}
