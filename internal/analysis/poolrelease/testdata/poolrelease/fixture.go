// Package fixture exercises the poolrelease analyzer: pooled values
// that are Released, returned, stored or handed off pass; values that
// are only read, and discarded pooled results, are flagged.
package fixture

type result struct {
	n    int
	hits *bitset
}

type bitset struct{ w []uint64 }

func (r *result) Release() {}
func (b *bitset) Release() {}

//cm:pooled
func acquire() *result { return &result{} }

//cm:pooled
func acquireErr() (*result, error) { return &result{}, nil }

func useRelease() int {
	r := acquire()
	defer r.Release()
	return r.n
}

func useReturn() *result {
	r := acquire()
	return r
}

func useStore(dst []*result) {
	r := acquire()
	dst[0] = r
}

func useHandoff() {
	r := acquire()
	consume(r)
}

func consume(r *result) { r.Release() }

func useErrPath() (int, error) {
	r, err := acquireErr()
	if err != nil {
		return 0, err
	}
	defer r.Release()
	return r.n, nil
}

func useInnerRelease() int {
	r := acquire()
	n := r.n
	r.hits.Release()
	return n
}

func useComposite() []*result {
	r := acquire()
	return []*result{r}
}

func useSend(ch chan *result) {
	r := acquire()
	ch <- r
}

//cm:pooled
func acquireBatch() ([]*result, error) { return nil, nil }

func useRangeRelease() error {
	rs, err := acquireBatch()
	if err != nil {
		return err
	}
	for _, r := range rs {
		r.Release()
	}
	return nil
}

func useIndexedRelease(k int) error {
	rs, err := acquireBatch()
	if err != nil {
		return err
	}
	for i := 0; i < k; i++ {
		r := rs[i]
		r.Release()
	}
	return nil
}

func useBadBatchRead() (int, error) {
	rs, err := acquireBatch() // want `never Released, returned, stored or handed off`
	if err != nil {
		return 0, err
	}
	return len(rs), nil
}

func useIndexStore(dst [][]*result) {
	dst[0][1] = acquire()
}

func useBadRead() int {
	r := acquire() // want `never Released, returned, stored or handed off`
	return r.n
}

func useBadUnused() {
	r := acquire() // want `never Released, returned, stored or handed off`
	_ = r.n
}

func useBadDiscard() {
	acquire() // want `discarded without Release`
}

func useBadBlank() {
	_, err := acquireErr() // want `discarded without Release`
	if err != nil {
		return
	}
}

func useAllowed() int {
	//cm:allow poolrelease -- fixture value is not pool-backed in this configuration
	r := acquire()
	return r.n
}

// Recover boundaries: a deferred recover() swallows panics, so only a
// deferred Release survives a panic between acquisition and cleanup.

func boundaryDeferRelease() (n int) {
	defer func() {
		if recover() != nil {
			n = -1
		}
	}()
	r := acquire()
	defer r.Release()
	return r.n
}

func boundaryInlineRelease() (n int) {
	defer func() {
		if recover() != nil {
			n = -1
		}
	}()
	r := acquire() // want `Released inline under a recover boundary`
	n = r.n
	r.Release()
	return n
}

func boundaryHandoff() (n int) {
	defer func() {
		if recover() != nil {
			n = -1
		}
	}()
	r := acquire()
	consume(r) // ownership transfers; the callee owns the unwind risk
	return 0
}

func boundaryReturn() (r *result) {
	defer func() {
		if recover() != nil {
			r = nil
		}
	}()
	return acquire()
}

func inlineReleaseNoBoundary() int {
	// Without a recover boundary a panic propagates to a caller that
	// can clean up (or kills the process) — inline Release stays legal.
	r := acquire()
	n := r.n
	r.Release()
	return n
}
