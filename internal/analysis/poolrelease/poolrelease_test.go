package poolrelease_test

import (
	"testing"

	"ciphermatch/internal/analysis/atest"
	"ciphermatch/internal/analysis/poolrelease"
)

func TestPoolrelease(t *testing.T) {
	atest.Run(t, "testdata/poolrelease", poolrelease.Analyzer)
}
