// Package poolrelease polices the ownership contract of pooled values:
// a result acquired from a //cm:pooled function (Store.Search returning
// an *IndexResult, core.NewBitset) must be Released, returned, stored,
// or handed to another function before the acquiring function exits —
// otherwise the backing buffers leak out of the sync.Pool and the
// steady-state allocation profile the pools exist to flatten comes
// back.
//
// Without a CFG the check is deliberately coarse: a pooled value is
// "discharged" if the function contains any Release call on it, returns
// it, stores it anywhere, passes it to a call, sends it on a channel,
// or places it in a composite literal — ownership transfer is assumed
// at each of those points. Reported cases are therefore the flagrant
// ones: the result is bound and then only read (or never used), or the
// call's pooled result is discarded outright. Per-path leaks on early
// returns are out of scope and covered by the leak-check tests.
//
// One class of mid-path leak IS in scope: panic-isolation boundaries.
// In a function that installs a deferred recover() (the server's
// request and batch-executor panic isolation), a panic between a pooled
// acquisition and its inline Release is swallowed — the process keeps
// serving and the value never returns to its pool, turning every
// recovered panic into steady-state garbage. Inside such a function an
// inline Release therefore does not discharge; the Release must be
// deferred (or ownership must leave by return/store/handoff as usual).
package poolrelease

import (
	"go/ast"
	"go/token"
	"go/types"

	"ciphermatch/internal/analysis"
)

// Analyzer is the pooled-value release checker.
var Analyzer = &analysis.Analyzer{
	Name: "poolrelease",
	Doc:  "flag pooled results (//cm:pooled acquisitions) that are never Released or handed off",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// pooledCall reports whether the call acquires from a //cm:pooled
// function.
func pooledCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	return pass.Dirs.Pooled(analysis.FuncFullName(fn))
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// acquires maps each local bound to a pooled result to its binding
	// site; discardSites are pooled calls whose result is dropped.
	type acquire struct {
		obj  types.Object
		stmt *ast.AssignStmt
		id   *ast.Ident
	}
	var acquires []acquire
	var discards []*ast.CallExpr

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && pooledCall(pass, call) {
				discards = append(discards, call)
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok || !pooledCall(pass, call) {
				return true
			}
			bound := false
			for _, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					// Assigning straight into a field, slice slot or map
					// entry (bms[i][j] = NewBitset(n)) is a store: the
					// value is owned by that structure now.
					bound = true
					continue
				}
				if id.Name == "_" {
					continue
				}
				var obj types.Object
				if o := info.Defs[id]; o != nil {
					obj = o
				} else {
					obj = info.Uses[id]
				}
				if obj == nil || isErrorType(obj.Type()) {
					continue
				}
				acquires = append(acquires, acquire{obj, n, id})
				bound = true
			}
			if !bound {
				// v is blank or error-only: the pooled result itself
				// was thrown away.
				discards = append(discards, call)
			}
		}
		return true
	})

	for _, call := range discards {
		pass.Reportf(call.Pos(), "result of pooled call in %s is discarded without Release", fd.Name.Name)
	}

	boundary := recoverBoundary(info, fd)
	for _, acq := range acquires {
		d := discharges(pass, fd, acq.obj, acq.stmt)
		switch {
		case d.deferRelease || d.transfer:
		case d.inlineRelease && !boundary:
		case d.inlineRelease && boundary:
			pass.Reportf(acq.id.Pos(), "pooled value %s in %s is Released inline under a recover boundary — a recovered panic before the Release leaks it; defer the Release", acq.id.Name, fd.Name.Name)
		default:
			pass.Reportf(acq.id.Pos(), "pooled value %s in %s is never Released, returned, stored or handed off", acq.id.Name, fd.Name.Name)
		}
	}
}

// recoverBoundary reports whether fd installs a deferred recover() —
// the panic-isolation pattern. Such a function swallows panics instead
// of propagating them, so its own cleanup never runs for statements
// after the panic point unless it is deferred.
func recoverBoundary(info *types.Info, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if def, ok := n.(*ast.DeferStmt); ok {
			ast.Inspect(def, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && analysis.BuiltinName(info, call) == "recover" {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// dischargeSet classifies how obj's ownership leaves the function:
// transfer covers return, store, channel send, range, composite literal
// and handoff as a call argument; Release calls are split by whether
// they run deferred, because only the deferred form survives a panic in
// a recover-boundary function.
type dischargeSet struct {
	inlineRelease bool
	deferRelease  bool
	transfer      bool
}

// discharges scans fd for the ways obj's ownership leaves the function
// on some path: a Release call (inline or deferred), a return, an
// assignment that stores it, use as a call argument, a channel send, or
// a composite literal. Only the value itself in those positions counts —
// returning or passing a *field* of the pooled value (r.n) is a read,
// not a transfer, and must not mask a missing Release.
func discharges(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object, bind *ast.AssignStmt) dischargeSet {
	info := pass.TypesInfo
	// isObj: the expression is the pooled value itself, possibly behind
	// parens, &, or *. An IndexExpr over the value also counts: an
	// element of a pooled batch (irs[i]) carries the same ownership, so
	// aliasing, returning or handing off an element transfers tracking
	// out of this check's CFG-free scope.
	isObj := func(e ast.Expr) bool {
		for {
			switch v := ast.Unparen(e).(type) {
			case *ast.Ident:
				return info.Uses[v] == obj
			case *ast.UnaryExpr:
				if v.Op != token.AND {
					return false
				}
				e = v.X
			case *ast.StarExpr:
				e = v.X
			case *ast.IndexExpr:
				e = v.X
			default:
				return false
			}
		}
	}
	// selectorBaseIsObj: the expression is a selector chain rooted at
	// the pooled value (v, v.Hits, ...) — accepted only for Release
	// receivers, where releasing an owned sub-resource discharges it.
	selectorBaseIsObj := func(e ast.Expr) bool {
		for {
			if isObj(e) {
				return true
			}
			sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
			if !ok {
				return false
			}
			e = sel.X
		}
	}
	var d dischargeSet
	// walk inspects a subtree, entering DeferStmt subtrees with the
	// deferred flag raised so Release calls classify by whether they run
	// on the unwind path (defer v.Release(), defer func(){v.Release()}())
	// or only on the straight-line path.
	var walk func(root ast.Node, deferred bool)
	walk = func(root ast.Node, deferred bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				if !deferred {
					walk(n.Call, true)
					return false
				}
			case *ast.CallExpr:
				// v.Release() (possibly v.Hits.Release()).
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" && selectorBaseIsObj(sel.X) {
					if deferred {
						d.deferRelease = true
					} else {
						d.inlineRelease = true
					}
					return true
				}
				// v handed to another function as an argument. len/cap are
				// pure reads, not transfers, so they do not discharge.
				if b := analysis.BuiltinName(info, n); b != "len" && b != "cap" {
					for _, arg := range n.Args {
						if isObj(arg) {
							d.transfer = true
						}
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if isObj(res) {
						d.transfer = true
					}
				}
			case *ast.AssignStmt:
				if n == bind {
					return true
				}
				// v stored somewhere (field, slice slot, another variable —
				// aliasing transfers ownership tracking out of scope).
				for _, rhs := range n.Rhs {
					if isObj(rhs) {
						d.transfer = true
					}
				}
			case *ast.SendStmt:
				if isObj(n.Value) {
					d.transfer = true
				}
			case *ast.RangeStmt:
				// Ranging over a pooled batch result (for _, r := range rs)
				// discharges the batch: the per-element Release discipline in
				// the loop body is the caller's, and per-element tracking is
				// out of scope for a CFG-free check.
				if isObj(n.X) {
					d.transfer = true
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					e := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						e = kv.Value
					}
					if isObj(e) {
						d.transfer = true
					}
				}
			}
			return true
		})
	}
	walk(fd.Body, false)
	return d
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
