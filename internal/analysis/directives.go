package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directives is the module-wide table of `//cm:` source directives:
//
//	//cm:hotpath                      (function doc) alloc-free, branch-
//	                                  disciplined kernel; checked by the
//	                                  hotpath and ctbranch analyzers
//	//cm:pooled                       (function doc) results are pooled
//	                                  and owe a Release on every path
//	//cm:allow <names> [-- reason]    suppress the named analyzers on
//	                                  this line and the next
//
// Hotpath/pooled marks are keyed by the function's full name (the
// types.Func.FullName rendering), so a parse-only scan of the whole
// module resolves callees across packages without export-data facts.
type Directives struct {
	hotpath map[string]bool
	pooled  map[string]bool
	// allow maps filename -> line -> analyzer names suppressed there.
	allow map[string]map[int]map[string]bool
}

// NewDirectives returns an empty table.
func NewDirectives() *Directives {
	return &Directives{
		hotpath: make(map[string]bool),
		pooled:  make(map[string]bool),
		allow:   make(map[string]map[int]map[string]bool),
	}
}

// Hotpath reports whether the function with the given full name is
// marked //cm:hotpath.
func (d *Directives) Hotpath(fullName string) bool { return d.hotpath[fullName] }

// Pooled reports whether the function with the given full name is
// marked //cm:pooled.
func (d *Directives) Pooled(fullName string) bool { return d.pooled[fullName] }

// Allowed reports whether a diagnostic of the named analyzer at
// (filename, line) is suppressed by a //cm:allow on that line or the
// line above it.
func (d *Directives) Allowed(analyzer, filename string, line int) bool {
	byLine := d.allow[filename]
	if byLine == nil {
		return false
	}
	for _, l := range [2]int{line, line - 1} {
		if names := byLine[l]; names != nil && (names[analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

// AddFile scans one parsed file (comments required) of the package with
// import path pkgPath into the table.
func (d *Directives) AddFile(fset *token.FileSet, pkgPath string, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			name, rest, ok := parseDirective(c.Text)
			if !ok || name != "allow" {
				continue
			}
			pos := fset.Position(c.Pos())
			byLine := d.allow[pos.Filename]
			if byLine == nil {
				byLine = make(map[int]map[string]bool)
				d.allow[pos.Filename] = byLine
			}
			names := byLine[pos.Line]
			if names == nil {
				names = make(map[string]bool)
				byLine[pos.Line] = names
			}
			for _, a := range splitAllowNames(rest) {
				names[a] = true
			}
		}
	}
	for _, decl := range f.Decls {
		switch decl := decl.(type) {
		case *ast.FuncDecl:
			d.addFuncMarks(decl.Doc, funcDeclFullName(pkgPath, decl))
		case *ast.GenDecl:
			// Interface method docs: marking Engine.SearchAndIndex as
			// //cm:pooled covers every call through the interface.
			for _, spec := range decl.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				iface, ok := ts.Type.(*ast.InterfaceType)
				if !ok {
					continue
				}
				for _, m := range iface.Methods.List {
					for _, nameIdent := range m.Names {
						full := "(" + pkgPath + "." + ts.Name.Name + ")." + nameIdent.Name
						d.addFuncMarks(m.Doc, full)
					}
				}
			}
		}
	}
}

func (d *Directives) addFuncMarks(doc *ast.CommentGroup, fullName string) {
	if doc == nil || fullName == "" {
		return
	}
	for _, c := range doc.List {
		switch name, _, ok := parseDirective(c.Text); {
		case !ok:
		case name == "hotpath":
			d.hotpath[fullName] = true
		case name == "pooled":
			d.pooled[fullName] = true
		}
	}
}

// parseDirective splits a `//cm:name rest` comment; directives must
// start flush after the slashes, like //go: build directives.
func parseDirective(text string) (name, rest string, ok bool) {
	const prefix = "//cm:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	body := text[len(prefix):]
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		return body[:i], strings.TrimSpace(body[i+1:]), true
	}
	return body, "", true
}

// splitAllowNames parses the analyzer list of a //cm:allow body,
// dropping the `-- reason` trailer.
func splitAllowNames(rest string) []string {
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	return strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
}

// funcDeclFullName synthesises the types.Func.FullName rendering from
// bare syntax: "pkg.Func" for functions, "(pkg.T).M" / "(*pkg.T).M"
// for methods. Type parameters on generic receivers are dropped, which
// matches FullName on the origin object.
func funcDeclFullName(pkgPath string, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkgPath + "." + fd.Name.Name
	}
	star, base := recvTypeName(fd.Recv.List[0].Type)
	if base == "" {
		return ""
	}
	ptr := ""
	if star {
		ptr = "*"
	}
	return "(" + ptr + pkgPath + "." + base + ")." + fd.Name.Name
}

// recvTypeName reduces a receiver type expression to (pointer?, base
// type name), unwrapping parens and generic instantiations.
func recvTypeName(expr ast.Expr) (star bool, name string) {
	for {
		switch t := expr.(type) {
		case *ast.ParenExpr:
			expr = t.X
		case *ast.StarExpr:
			star = true
			expr = t.X
		case *ast.IndexExpr:
			expr = t.X
		case *ast.IndexListExpr:
			expr = t.X
		case *ast.Ident:
			return star, t.Name
		default:
			return star, ""
		}
	}
}
