// Package analysis is cmvet's checker framework: a small, offline,
// stdlib-only reimplementation of the golang.org/x/tools/go/analysis
// surface the repo's invariant checkers need. The build environment has
// no module proxy access, so instead of depending on x/tools the
// framework carries its own Analyzer/Pass/Diagnostic types, a package
// loader built on `go list -export` plus the standard library's gc
// export-data importer, and a `//cm:` directive table shared by every
// analyzer.
//
// The invariants the analyzers guard are the conventions five PRs of
// kernel and server work established and that reviews kept re-checking
// by hand:
//
//   - hotpath: `//cm:hotpath` functions (the fused ring kernels, the
//     engine inner loop) stay free of heap allocation, map traffic,
//     defers and calls into un-annotated code.
//   - ctbranch: inside hotpath functions, no branch or variable-index
//     load may data-flow from ciphertext coefficient parameters — the
//     zero-stores-on-miss branchless discipline.
//   - wiresize: wire decoders must bound every length read off the wire
//     before allocating from it.
//   - poolrelease: pooled results (IndexResult, Bitset) acquired from
//     `//cm:pooled` functions must be Released, returned or handed off
//     on every path.
//   - atomicfield: a field accessed through sync/atomic anywhere is
//     accessed through sync/atomic everywhere.
//
// Intentional violations are suppressed in source with
// `//cm:allow <analyzer> -- reason`, which the driver honours for the
// directive's own line and the line below it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one invariant checker. Run inspects a single type-checked
// package through its Pass and reports findings; it must not retain the
// pass.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //cm:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-line description `cmvet -list` prints.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// Pass carries everything an analyzer may inspect for one package: the
// parsed files, type information and the module-wide directive table.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dirs is the directive table for the whole module (or, for ad-hoc
	// directory loads, for the loaded files), so analyzers can resolve
	// `//cm:hotpath` / `//cm:pooled` on callees in other packages.
	Dirs *Directives

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding, already resolved to a file
// position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the go-vet-style one-line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// FuncFullName returns the directive-table key of a function or method
// object: the same rendering types.Func.FullName uses —
// "pkg/path.Func", "(pkg/path.T).Method", "(*pkg/path.T).Method" — so
// keys synthesised from bare syntax during the parse-only directive
// scan match objects resolved during the type-checked analysis.
func FuncFullName(fn *types.Func) string {
	if orig := fn.Origin(); orig != nil {
		fn = orig
	}
	return fn.FullName()
}
