// Package registry enumerates the cmvet analyzer suite. It sits apart
// from the framework package so analyzer packages (which import
// internal/analysis) never form a cycle with the code that needs the
// full list (cmd/cmvet, the CI driver tests).
package registry

import (
	"ciphermatch/internal/analysis"
	"ciphermatch/internal/analysis/atomicfield"
	"ciphermatch/internal/analysis/ctbranch"
	"ciphermatch/internal/analysis/hotpath"
	"ciphermatch/internal/analysis/poolrelease"
	"ciphermatch/internal/analysis/wiresize"
)

// All is the full cmvet analyzer suite, in report order.
var All = []*analysis.Analyzer{
	hotpath.Analyzer,
	ctbranch.Analyzer,
	wiresize.Analyzer,
	poolrelease.Analyzer,
	atomicfield.Analyzer,
}

// ByName returns the named analyzer, nil if unknown.
func ByName(name string) *analysis.Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}
