// Package metrics is a small, dependency-free serving-metrics toolkit
// for the CIPHERMATCH server: lock-free atomic counters and gauges plus
// power-of-two-bucketed histograms, collected in a Registry that renders
// either a flat name/value snapshot (the MsgStats wire reply) or
// Prometheus-style text exposition (the cmserver /metrics endpoint).
//
// The hot-path cost of recording is one or two atomic adds — a search
// under load must never serialise on a metrics mutex. Registration
// (name lookup) is mutex-guarded but callers cache the returned handle,
// so the map is only touched at setup time.
package metrics

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomically settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the bucket count of Histogram: bucket i holds samples
// v with bitlen(v) == i, i.e. [2^(i-1), 2^i), with bucket 0 holding
// v <= 0. 64 buckets cover the whole int64 range, so a nanosecond
// latency histogram spans sub-ns to ~292 years with ≤2× resolution.
const histBuckets = 64

// Histogram is a lock-free power-of-two histogram. Observe is two
// atomic adds plus one atomic max; quantiles are approximate (bucket
// upper bound), which is plenty for latency percentiles where the
// interesting signal is orders of magnitude.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Buckets snapshots the per-bucket counts (bucket i holds samples with
// bitlen == i; see histBuckets). The exposition layer folds these into
// cumulative Prometheus _bucket{le=...} samples, and delta consumers
// (the storm report) subtract two snapshots to get interval quantiles.
func (h *Histogram) Buckets() [histBuckets]int64 {
	var out [histBuckets]int64
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// BucketUpper returns the inclusive upper bound (the Prometheus `le`
// value) of bucket i: 0 for bucket 0 (samples <= 0), else 2^i - 1 —
// exact for integer samples, since bucket i holds [2^(i-1), 2^i).
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return (int64(1) << uint(i)) - 1
}

// QuantileOf computes the same upper-bound quantile estimate as
// Histogram.Quantile, but over an externally supplied bucket array —
// the delta of two Buckets snapshots, so interval percentiles (a storm
// run, a cmtop refresh window) come out of cumulative counters.
func QuantileOf(buckets [histBuckets]int64, q float64) int64 {
	var total int64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += buckets[i]
		if seen >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(histBuckets - 1)
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed sample (0 before any Observe).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the average observed sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed samples: the upper edge of the bucket the quantile sample
// falls in, clamped to the observed max. Returns 0 with no samples.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == 0 {
				return 0
			}
			upper := int64(1) << uint(i)
			if i == 63 || upper <= 0 {
				upper = h.max.Load()
			}
			if m := h.max.Load(); m < upper {
				upper = m
			}
			return upper
		}
	}
	return h.max.Load()
}

// KV is one flattened metric sample of a Registry snapshot — what
// MsgStats ships. Histograms expand to _count/_sum/_max/_p50/_p95/_p99
// entries so the wire stays a flat integer list.
type KV struct {
	Name  string
	Value int64
}

// Registry is a named collection of metrics. Get-or-create lookups are
// mutex-guarded; the returned handles record lock-free.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	hists       map[string]*Histogram
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec
	collectors  []func()
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		hists:       make(map[string]*Histogram),
		counterVecs: make(map[string]*CounterVec),
		gaugeVecs:   make(map[string]*GaugeVec),
		histVecs:    make(map[string]*HistogramVec),
	}
}

// OnCollect registers a hook run before every Snapshot or Prometheus
// exposition — the place to sample values that are pulled, not pushed
// (Go runtime stats, queue depths). Hooks run outside the registry
// lock, in registration order; they should cache their metric handles.
func (r *Registry) OnCollect(f func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, f)
	r.mu.Unlock()
}

// collect runs the registered collect hooks.
func (r *Registry) collect() {
	r.mu.Lock()
	hooks := r.collectors
	r.mu.Unlock()
	for _, f := range hooks {
		f()
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// appendHistKVs flattens one histogram under the given sample name.
func appendHistKVs(out []KV, name string, h *Histogram) []KV {
	return append(out,
		KV{name + "_count", h.Count()},
		KV{name + "_sum", h.Sum()},
		KV{name + "_max", h.Max()},
		KV{name + "_p50", h.Quantile(0.50)},
		KV{name + "_p95", h.Quantile(0.95)},
		KV{name + "_p99", h.Quantile(0.99)},
	)
}

// Snapshot flattens every metric into a name-sorted KV list: counters
// and gauges verbatim, histograms as _count/_sum/_max/_p50/_p95/_p99.
// Labeled families flatten with the rendered exposition name as the KV
// key (histogram suffixes go before the braces, so a child sample reads
// stage_latency_ns_p95{stage="arena"} — still one flat string on the
// wire). Collect hooks run first so pulled values are fresh.
func (r *Registry) Snapshot() []KV {
	r.collect()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]KV, 0, len(r.counters)+len(r.gauges)+6*len(r.hists))
	for name, c := range r.counters {
		out = append(out, KV{name, c.Load()})
	}
	for name, g := range r.gauges {
		out = append(out, KV{name, g.Load()})
	}
	for name, h := range r.hists {
		out = appendHistKVs(out, name, h)
	}
	for name, v := range r.counterVecs {
		for _, ch := range sortedChildren(&v.mu, v.children) {
			out = append(out, KV{labeledName(name, v.key, ch.Value), ch.Child.Load()})
		}
	}
	for name, v := range r.gaugeVecs {
		for _, ch := range sortedChildren(&v.mu, v.children) {
			out = append(out, KV{labeledName(name, v.key, ch.Value), ch.Child.Load()})
		}
	}
	for name, v := range r.histVecs {
		for _, ch := range sortedChildren(&v.mu, v.children) {
			h := ch.Child
			lbl := `{` + v.key + `="` + escapeLabelValue(ch.Value) + `"}`
			out = append(out,
				KV{name + "_count" + lbl, h.Count()},
				KV{name + "_sum" + lbl, h.Sum()},
				KV{name + "_max" + lbl, h.Max()},
				KV{name + "_p50" + lbl, h.Quantile(0.50)},
				KV{name + "_p95" + lbl, h.Quantile(0.95)},
				KV{name + "_p99" + lbl, h.Quantile(0.99)},
			)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the value of one snapshot entry by name.
func Lookup(kvs []KV, name string) (int64, bool) {
	for _, kv := range kvs {
		if kv.Name == name {
			return kv.Value, true
		}
	}
	return 0, false
}

// writeHistProm renders one histogram in real cumulative Prometheus
// histogram form: _bucket{le="..."} samples (le values are the exact
// integer upper bounds of the pow2 buckets, emitted up to the highest
// occupied bucket, then +Inf), _sum and _count, plus _p50/_p95/_p99
// convenience gauges so a human reading the page (or cmtop) gets
// quantiles without running PromQL. labels is either empty or a
// rendered `key="value"` pair to merge into the bucket label set.
func writeHistProm(w io.Writer, name, labels string, h *Histogram) error {
	buckets := h.Buckets()
	top := -1
	for i, c := range buckets {
		if c > 0 {
			top = i
		}
	}
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"%d\"} %d\n", name, labels, sep, BucketUpper(i), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.Count()); err != nil {
		return err
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n", name, suffix, h.Sum(), name, suffix, h.Count()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_p50%s %d\n%s_p95%s %d\n%s_p99%s %d\n",
		name, suffix, h.Quantile(0.50), name, suffix, h.Quantile(0.95), name, suffix, h.Quantile(0.99))
	return err
}

// WritePrometheus renders the registry in Prometheus text exposition
// format: counters and gauges as bare samples (labeled families as one
// TYPE block with one sample per child), histograms in cumulative
// _bucket{le=...} form with _sum/_count and _p50/_p95/_p99 lines.
// Collect hooks run first so pulled values are fresh.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.collect()
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	counterVecs := make(map[string]*CounterVec, len(r.counterVecs))
	for k, v := range r.counterVecs {
		counterVecs[k] = v
	}
	gaugeVecs := make(map[string]*GaugeVec, len(r.gaugeVecs))
	for k, v := range r.gaugeVecs {
		gaugeVecs[k] = v
	}
	histVecs := make(map[string]*HistogramVec, len(r.histVecs))
	for k, v := range r.histVecs {
		histVecs[k] = v
	}
	r.mu.Unlock()

	for _, name := range sortedNames(counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, counters[name].Load()); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(counterVecs) {
		v := counterVecs[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", name); err != nil {
			return err
		}
		for _, ch := range sortedChildren(&v.mu, v.children) {
			if _, err := fmt.Fprintf(w, "%s %d\n", labeledName(name, v.key, ch.Value), ch.Child.Load()); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedNames(gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, gauges[name].Load()); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(gaugeVecs) {
		v := gaugeVecs[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
			return err
		}
		for _, ch := range sortedChildren(&v.mu, v.children) {
			if _, err := fmt.Fprintf(w, "%s %d\n", labeledName(name, v.key, ch.Value), ch.Child.Load()); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedNames(hists) {
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		if err := writeHistProm(w, name, "", hists[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(histVecs) {
		v := histVecs[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		for _, ch := range sortedChildren(&v.mu, v.children) {
			labels := v.key + `="` + escapeLabelValue(ch.Value) + `"`
			if err := writeHistProm(w, name, labels, ch.Child); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Handler returns an http.Handler serving the Prometheus exposition —
// what cmserver mounts at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
