package metrics

import (
	"sort"
	"strings"
	"sync"
)

// Label support: a Vec is a family of metrics sharing one name and one
// label key, with one child per label value — counters split per tenant
// database, histograms split per serving stage. Children are created on
// first use (mutex-guarded, like the flat registry lookups) and the
// returned handles record lock-free, so the hot path never touches the
// family map after its handle is cached.
//
// Cardinality policy: label values must come from a bounded, server-
// controlled set — database names (capped by MaxStoredDBs), the fixed
// stage catalog, typed error classes, fault kinds. Never label by
// anything a client can mint freely per request (trace IDs, offsets),
// or the registry becomes an unbounded allocation amplifier. The store
// enforces the tenant bound upstream (uploads beyond MaxStoredDBs are
// refused), so every Vec in the server is finite by construction.

// labeledName renders the canonical exposition-format sample name,
// name{key="value"}, which doubles as the flat Snapshot key — labeled
// samples travel over MsgStats as ordinary KV entries and any consumer
// that does not care about labels can treat the whole string as a name.
func labeledName(name, key, value string) string {
	var b strings.Builder
	b.Grow(len(name) + len(key) + len(value) + 6)
	b.WriteString(name)
	b.WriteByte('{')
	b.WriteString(key)
	b.WriteString(`="`)
	b.WriteString(escapeLabelValue(value))
	b.WriteString(`"}`)
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// CounterVec is a family of counters keyed by one label.
type CounterVec struct {
	name, key string
	mu        sync.Mutex
	children  map[string]*Counter
}

// With returns the child counter for the label value, creating it on
// first use. Callers cache the handle; recording through it is
// lock-free.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

// GaugeVec is a family of gauges keyed by one label.
type GaugeVec struct {
	name, key string
	mu        sync.Mutex
	children  map[string]*Gauge
}

// With returns the child gauge for the label value, creating it on
// first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.children[value]
	if !ok {
		g = &Gauge{}
		v.children[value] = g
	}
	return g
}

// HistogramVec is a family of histograms keyed by one label.
type HistogramVec struct {
	name, key string
	mu        sync.Mutex
	children  map[string]*Histogram
}

// With returns the child histogram for the label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[value]
	if !ok {
		h = &Histogram{}
		v.children[value] = h
	}
	return h
}

// CounterVec returns the named counter family with the given label key,
// creating it on first use. A name must keep one label key for its
// lifetime; reusing the name with a different key panics (it would
// silently split one family into colliding exposition lines).
func (r *Registry) CounterVec(name, key string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.counterVecs[name]
	if !ok {
		v = &CounterVec{name: name, key: key, children: make(map[string]*Counter)}
		r.counterVecs[name] = v
	} else if v.key != key {
		panic("metrics: counter family " + name + " registered with conflicting label keys")
	}
	return v
}

// GaugeVec returns the named gauge family with the given label key,
// creating it on first use.
func (r *Registry) GaugeVec(name, key string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gaugeVecs[name]
	if !ok {
		v = &GaugeVec{name: name, key: key, children: make(map[string]*Gauge)}
		r.gaugeVecs[name] = v
	} else if v.key != key {
		panic("metrics: gauge family " + name + " registered with conflicting label keys")
	}
	return v
}

// HistogramVec returns the named histogram family with the given label
// key, creating it on first use.
func (r *Registry) HistogramVec(name, key string) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.histVecs[name]
	if !ok {
		v = &HistogramVec{name: name, key: key, children: make(map[string]*Histogram)}
		r.histVecs[name] = v
	} else if v.key != key {
		panic("metrics: histogram family " + name + " registered with conflicting label keys")
	}
	return v
}

// sortedChildren returns a Vec's (value, child) pairs ordered by label
// value, for deterministic exposition and snapshots.
func sortedChildren[V any](mu *sync.Mutex, children map[string]V) []struct {
	Value string
	Child V
} {
	mu.Lock()
	defer mu.Unlock()
	out := make([]struct {
		Value string
		Child V
	}, 0, len(children))
	for v, c := range children {
		out = append(out, struct {
			Value string
			Child V
		}{v, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}
