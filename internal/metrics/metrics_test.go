package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries_total")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("queries_total") != c {
		t.Fatal("get-or-create returned a different counter for the same name")
	}
	g := r.Gauge("window_ns")
	g.Set(250)
	g.Add(-50)
	if got := g.Load(); got != 200 {
		t.Fatalf("gauge = %d, want 200", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// 90 samples near 100, 10 near 100000: p50 must land in the small
	// cluster's bucket, p99 in the large one. Bounds are bucket upper
	// edges (power-of-two), so assert ranges, not exact values.
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100000)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 90*100+10*100000 {
		t.Fatalf("sum = %d", got)
	}
	p50 := h.Quantile(0.50)
	if p50 < 100 || p50 > 256 {
		t.Fatalf("p50 = %d, want within [100, 256]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 100000 || p99 > 1<<17 {
		t.Fatalf("p99 = %d, want within [100000, 131072]", p99)
	}
	if h.Max() != 100000 {
		t.Fatalf("max = %d", h.Max())
	}
	// Quantiles never exceed the observed max.
	if h.Quantile(1.0) != 100000 {
		t.Fatalf("p100 = %d", h.Quantile(1.0))
	}
	h.Observe(0) // non-positive samples land in bucket 0
	if h.Quantile(0.001) != 0 {
		t.Fatalf("quantile floor = %d, want 0", h.Quantile(0.001))
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d, want 1000", h.Max())
	}
}

func TestSnapshotSortedAndFlattened(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Histogram("lat_ns").Observe(7)
	kvs := r.Snapshot()
	for i := 1; i < len(kvs); i++ {
		if kvs[i-1].Name >= kvs[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", kvs[i-1].Name, kvs[i].Name)
		}
	}
	if v, ok := Lookup(kvs, "a_total"); !ok || v != 1 {
		t.Fatalf("a_total = %d (%v)", v, ok)
	}
	if v, ok := Lookup(kvs, "lat_ns_count"); !ok || v != 1 {
		t.Fatalf("lat_ns_count = %d (%v)", v, ok)
	}
	if _, ok := Lookup(kvs, "lat_ns_p99"); !ok {
		t.Fatal("snapshot missing histogram percentile entry")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries_total").Add(3)
	r.Gauge("coalesce_window_ns").Set(150)
	r.Histogram("queue_wait_ns").Observe(42)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE queries_total counter\nqueries_total 3\n",
		"# TYPE coalesce_window_ns gauge\ncoalesce_window_ns 150\n",
		"# TYPE queue_wait_ns summary\n",
		`queue_wait_ns{quantile="0.99"}`,
		"queue_wait_ns_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
