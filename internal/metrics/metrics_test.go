package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries_total")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("queries_total") != c {
		t.Fatal("get-or-create returned a different counter for the same name")
	}
	g := r.Gauge("window_ns")
	g.Set(250)
	g.Add(-50)
	if got := g.Load(); got != 200 {
		t.Fatalf("gauge = %d, want 200", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// 90 samples near 100, 10 near 100000: p50 must land in the small
	// cluster's bucket, p99 in the large one. Bounds are bucket upper
	// edges (power-of-two), so assert ranges, not exact values.
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100000)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 90*100+10*100000 {
		t.Fatalf("sum = %d", got)
	}
	p50 := h.Quantile(0.50)
	if p50 < 100 || p50 > 256 {
		t.Fatalf("p50 = %d, want within [100, 256]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 100000 || p99 > 1<<17 {
		t.Fatalf("p99 = %d, want within [100000, 131072]", p99)
	}
	if h.Max() != 100000 {
		t.Fatalf("max = %d", h.Max())
	}
	// Quantiles never exceed the observed max.
	if h.Quantile(1.0) != 100000 {
		t.Fatalf("p100 = %d", h.Quantile(1.0))
	}
	h.Observe(0) // non-positive samples land in bucket 0
	if h.Quantile(0.001) != 0 {
		t.Fatalf("quantile floor = %d, want 0", h.Quantile(0.001))
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d, want 1000", h.Max())
	}
}

func TestSnapshotSortedAndFlattened(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Histogram("lat_ns").Observe(7)
	kvs := r.Snapshot()
	for i := 1; i < len(kvs); i++ {
		if kvs[i-1].Name >= kvs[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", kvs[i-1].Name, kvs[i].Name)
		}
	}
	if v, ok := Lookup(kvs, "a_total"); !ok || v != 1 {
		t.Fatalf("a_total = %d (%v)", v, ok)
	}
	if v, ok := Lookup(kvs, "lat_ns_count"); !ok || v != 1 {
		t.Fatalf("lat_ns_count = %d (%v)", v, ok)
	}
	if _, ok := Lookup(kvs, "lat_ns_p99"); !ok {
		t.Fatal("snapshot missing histogram percentile entry")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries_total").Add(3)
	r.Gauge("coalesce_window_ns").Set(150)
	r.Histogram("queue_wait_ns").Observe(42)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE queries_total counter\nqueries_total 3\n",
		"# TYPE coalesce_window_ns gauge\ncoalesce_window_ns 150\n",
		"# TYPE queue_wait_ns histogram\n",
		`queue_wait_ns_bucket{le="63"} 1`, // 42 has bitlen 6 → bucket [32,64)
		`queue_wait_ns_bucket{le="+Inf"} 1`,
		"queue_wait_ns_sum 42\n",
		"queue_wait_ns_count 1\n",
		"queue_wait_ns_p99 ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns")
	h.Observe(1)   // bucket 1, le=1
	h.Observe(3)   // bucket 2, le=3
	h.Observe(3)   // bucket 2
	h.Observe(100) // bucket 7, le=127
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Buckets must be cumulative, cover every bucket up to the highest
	// occupied one (empty intermediates included), and end at +Inf with
	// the total count.
	for _, want := range []string{
		`lat_ns_bucket{le="1"} 1`,
		`lat_ns_bucket{le="3"} 3`,
		`lat_ns_bucket{le="7"} 3`,
		`lat_ns_bucket{le="15"} 3`,
		`lat_ns_bucket{le="127"} 4`,
		`lat_ns_bucket{le="+Inf"} 4`,
		"lat_ns_sum 107\n",
		"lat_ns_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative counts must be monotonically non-decreasing in le order
	// (this is what Prometheus histogram_quantile requires).
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_ns_bucket{") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
			t.Fatalf("unparsable bucket line %q", line)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = v
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	qv := r.CounterVec("tenant_queries_total", "db")
	qv.With("alpha").Add(5)
	qv.With("beta").Inc()
	if qv.With("alpha") != qv.With("alpha") {
		t.Fatal("With must return a stable child")
	}
	r.GaugeVec("tenant_queue_depth", "db").With("alpha").Set(3)
	hv := r.HistogramVec("stage_latency_ns", "stage")
	hv.With("arena").Observe(1000)
	hv.With("decode").Observe(10)

	kvs := r.Snapshot()
	if v, ok := Lookup(kvs, `tenant_queries_total{db="alpha"}`); !ok || v != 5 {
		t.Fatalf(`tenant_queries_total{db="alpha"} = %d (%v)`, v, ok)
	}
	if v, ok := Lookup(kvs, `tenant_queue_depth{db="alpha"}`); !ok || v != 3 {
		t.Fatalf("labeled gauge = %d (%v)", v, ok)
	}
	if v, ok := Lookup(kvs, `stage_latency_ns_count{stage="arena"}`); !ok || v != 1 {
		t.Fatalf("labeled hist count = %d (%v)", v, ok)
	}
	if _, ok := Lookup(kvs, `stage_latency_ns_p95{stage="decode"}`); !ok {
		t.Fatal("labeled hist percentile missing from snapshot")
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE tenant_queries_total counter\n",
		`tenant_queries_total{db="alpha"} 5`,
		`tenant_queries_total{db="beta"} 1`,
		`tenant_queue_depth{db="alpha"} 3`,
		"# TYPE stage_latency_ns histogram\n",
		`stage_latency_ns_bucket{stage="arena",le="+Inf"} 1`,
		`stage_latency_ns_sum{stage="arena"} 1000`,
		`stage_latency_ns_count{stage="decode"} 1`,
		`stage_latency_ns_p50{stage="decode"} `,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The TYPE header must appear once per family, not once per child.
	if strings.Count(out, "# TYPE tenant_queries_total counter") != 1 {
		t.Fatalf("duplicate TYPE headers:\n%s", out)
	}
}

func TestVecKeyConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("x_total", "db")
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting label key must panic")
		}
	}()
	r.CounterVec("x_total", "stage")
}

func TestLabelEscaping(t *testing.T) {
	got := labeledName("m", "db", "a\\b\"c\nd")
	want := `m{db="a\\b\"c\nd"}`
	if got != want {
		t.Fatalf("labeledName = %q, want %q", got, want)
	}
	if escapeLabelValue("plain") != "plain" {
		t.Fatal("plain values must pass through unchanged")
	}
}

func TestBucketUpperAndQuantileOf(t *testing.T) {
	if BucketUpper(0) != 0 || BucketUpper(1) != 1 || BucketUpper(7) != 127 {
		t.Fatalf("BucketUpper wrong: %d %d %d", BucketUpper(0), BucketUpper(1), BucketUpper(7))
	}
	if BucketUpper(63) != math.MaxInt64 {
		t.Fatalf("BucketUpper(63) = %d", BucketUpper(63))
	}
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100000)
	}
	b := h.Buckets()
	p50 := QuantileOf(b, 0.50)
	if p50 < 100 || p50 > 255 {
		t.Fatalf("QuantileOf p50 = %d", p50)
	}
	p99 := QuantileOf(b, 0.99)
	if p99 < 100000 || p99 > (1<<17)-1 {
		t.Fatalf("QuantileOf p99 = %d", p99)
	}
	// Delta use: subtract a prior snapshot and quantile the interval.
	before := b
	for i := 0; i < 100; i++ {
		h.Observe(1_000_000)
	}
	after := h.Buckets()
	var delta [64]int64
	for i := range delta {
		delta[i] = after[i] - before[i]
	}
	dp50 := QuantileOf(delta, 0.50)
	if dp50 < 1_000_000 || dp50 > (1<<20)-1 {
		t.Fatalf("interval p50 = %d", dp50)
	}
	if QuantileOf([64]int64{}, 0.5) != 0 {
		t.Fatal("empty delta must quantile to 0")
	}
}

func TestOnCollectAndRuntime(t *testing.T) {
	r := NewRegistry()
	calls := 0
	g := r.Gauge("pull_me")
	r.OnCollect(func() { calls++; g.Set(int64(calls)) })
	kvs := r.Snapshot()
	if v, _ := Lookup(kvs, "pull_me"); v != 1 {
		t.Fatalf("collect hook did not run before snapshot: %d", v)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("collect hook ran %d times, want 2", calls)
	}

	RegisterRuntime(r)
	kvs = r.Snapshot()
	if v, ok := Lookup(kvs, "go_goroutines"); !ok || v < 1 {
		t.Fatalf("go_goroutines = %d (%v)", v, ok)
	}
	if v, ok := Lookup(kvs, "go_heap_alloc_bytes"); !ok || v <= 0 {
		t.Fatalf("go_heap_alloc_bytes = %d (%v)", v, ok)
	}
}
