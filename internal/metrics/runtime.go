package metrics

import "runtime"

// RegisterRuntime wires Go runtime health gauges into the registry via
// a collect hook, so every /metrics scrape and MsgStats reply carries a
// fresh sample without any background goroutine:
//
//	go_goroutines          live goroutine count
//	go_heap_alloc_bytes    bytes of allocated heap objects
//	go_heap_sys_bytes      heap memory obtained from the OS
//	go_gc_cycles_total     completed GC cycles
//	go_gc_pause_last_ns    duration of the most recent GC stop-the-world
//	go_gc_pause_total_ns   cumulative GC pause time
//
// ReadMemStats stops the world briefly (microseconds); scrape-driven
// sampling keeps that off the request path entirely.
func RegisterRuntime(r *Registry) {
	goroutines := r.Gauge("go_goroutines")
	heapAlloc := r.Gauge("go_heap_alloc_bytes")
	heapSys := r.Gauge("go_heap_sys_bytes")
	gcCycles := r.Gauge("go_gc_cycles_total")
	gcPauseLast := r.Gauge("go_gc_pause_last_ns")
	gcPauseTotal := r.Gauge("go_gc_pause_total_ns")
	r.OnCollect(func() {
		goroutines.Set(int64(runtime.NumGoroutine()))
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapAlloc.Set(int64(ms.HeapAlloc))
		heapSys.Set(int64(ms.HeapSys))
		gcCycles.Set(int64(ms.NumGC))
		if ms.NumGC > 0 {
			gcPauseLast.Set(int64(ms.PauseNs[(ms.NumGC+255)%256]))
		}
		gcPauseTotal.Set(int64(ms.PauseTotalNs))
	})
}
