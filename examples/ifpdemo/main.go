// In-flash processing demo: the same encrypted search executed twice —
// once by the software evaluator and once inside the simulated SSD, where
// homomorphic addition runs as the bit-serial latch µ-program of Fig. 5.
// The demo shows the results are identical and prints the flash-level
// operation counts, latency and energy the search consumed.
package main

import (
	"fmt"
	"log"

	"ciphermatch"
	"ciphermatch/internal/rng"
)

func main() {
	cfg := ciphermatch.Config{
		Params:    ciphermatch.ParamsPaper(),
		AlignBits: 8,
		Mode:      ciphermatch.ModeSeededMatch,
	}
	client, err := ciphermatch.NewClient(cfg, ciphermatch.NewSeed("ifp-demo"))
	if err != nil {
		log.Fatal(err)
	}

	data := make([]byte, 6144) // 3 chunks at n=1024
	rng.NewSourceFromString("ifp-data").Bytes(data)
	copy(data[1000:], "ciphertext")
	copy(data[5000:], "ciphertext")
	dbBits := len(data) * 8

	db, err := client.EncryptDatabase(data, dbBits)
	if err != nil {
		log.Fatal(err)
	}
	query := []byte("ciphertext")
	q, err := client.PrepareQuery(query, len(query)*8, dbBits)
	if err != nil {
		log.Fatal(err)
	}

	// Path 1: software evaluator.
	sw := ciphermatch.NewServer(cfg.Params, db)
	swResult, err := sw.SearchAndIndex(q)
	if err != nil {
		log.Fatal(err)
	}

	// Path 2: inside the simulated SSD.
	drive, err := ciphermatch.NewSSD(ciphermatch.DefaultSSDConfig(), cfg.Params, ciphermatch.SoftwareTransposition)
	if err != nil {
		log.Fatal(err)
	}
	if err := drive.CMWriteDatabase(db); err != nil {
		log.Fatal(err)
	}
	ifpResult, err := drive.CMSearch(q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("software candidates: %v\n", swResult.Candidates)
	fmt.Printf("in-flash candidates: %v\n", ifpResult.Candidates)
	same := len(swResult.Candidates) == len(ifpResult.Candidates)
	for i := 0; same && i < len(swResult.Candidates); i++ {
		same = swResult.Candidates[i] == ifpResult.Candidates[i]
	}
	fmt.Printf("identical: %v\n\n", same)
	swResult.Release()
	ifpResult.Release()

	fs := drive.FlashStats()
	cs := drive.ControllerStats()
	fmt.Println("flash-level accounting for the in-flash search:")
	fmt.Printf("  page reads:          %d\n", fs.Reads)
	fmt.Printf("  latch transfers:     %d\n", fs.LatchTransfers)
	fmt.Printf("  AND/OR ops:          %d\n", fs.AndOrOps)
	fmt.Printf("  XOR ops:             %d\n", fs.XorOps)
	fmt.Printf("  bit-serial steps:    %d\n", fs.BitSerialAdds)
	fmt.Printf("  homomorphic adds:    %d (executed as latch µ-programs)\n", cs.HomAdds)
	fmt.Printf("  transpositions:      %d pages (%v)\n", cs.TransposePages, cs.TransposeTime)
	fmt.Printf("  index generation:    %d pages (%v)\n", cs.IndexGenPages, cs.IndexGenTime)
	fmt.Printf("  flash busy time:     %v (sum) / %v (parallel makespan)\n", fs.Time, drive.MaxPlaneTime())
	fmt.Printf("  flash energy:        %.2f mJ\n", fs.Energy*1e3)
	fmt.Printf("  P/E cycles consumed: %d erases (search wears nothing)\n", fs.Erases)
}
