// Encrypted database search (case study 2, §5.3): fixed-width key-value
// records searched by exact key over the encrypted store; candidates map
// back to record numbers.
package main

import (
	"fmt"
	"log"

	"ciphermatch"
	"ciphermatch/internal/rng"
	"ciphermatch/internal/workload"
)

func main() {
	src := rng.NewSourceFromString("dbsearch-example")
	layout := workload.RecordLayout{KeyBytes: 8, ValueBytes: 24}

	records := workload.RandomRecords(64, layout, src)
	records[17].Key = "alice007"
	records[42].Key = "bob-2024"

	flat, err := workload.Flatten(records, layout)
	if err != nil {
		log.Fatal(err)
	}
	dbBits := len(flat) * 8

	cfg := ciphermatch.Config{
		Params:    ciphermatch.ParamsPaper(),
		AlignBits: 8,
		Mode:      ciphermatch.ModeSeededMatch,
	}
	client, err := ciphermatch.NewClient(cfg, ciphermatch.NewSeed("db-owner"))
	if err != nil {
		log.Fatal(err)
	}
	db, err := client.EncryptDatabase(flat, dbBits)
	if err != nil {
		log.Fatal(err)
	}
	server := ciphermatch.NewServer(cfg.Params, db)
	fmt.Printf("store: %d records (%d bytes) -> %d encrypted chunk(s)\n",
		len(records), len(flat), len(db.Chunks))

	for _, key := range []string{"alice007", "bob-2024", "nobody42"} {
		qBytes, qBits, err := workload.KeyQuery(key, layout)
		if err != nil {
			log.Fatal(err)
		}
		q, err := client.PrepareQuery(qBytes, qBits, dbBits)
		if err != nil {
			log.Fatal(err)
		}
		result, err := server.SearchAndIndex(q)
		if err != nil {
			log.Fatal(err)
		}
		verified := ciphermatch.VerifyCandidates(flat, dbBits, qBytes, qBits, result.Candidates)
		result.Release()
		fmt.Printf("key %-9q: ", key)
		found := false
		for _, o := range verified {
			if idx, atKey := workload.RecordIndex(o, layout); atKey {
				fmt.Printf("record %d (value %q) ", idx, records[idx].Value)
				found = true
			}
		}
		if !found {
			fmt.Print("not present")
		}
		fmt.Println()
	}
}
