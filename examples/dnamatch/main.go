// DNA read mapping (case study 1, §5.3): map sequencing reads onto an
// encrypted reference genome with 2-bit base packing and base-aligned
// (AlignBits=2) search.
package main

import (
	"fmt"
	"log"

	"ciphermatch"
	"ciphermatch/internal/rng"
	"ciphermatch/internal/workload"
)

func main() {
	src := rng.NewSourceFromString("dnamatch-example")

	// Reference genome: 8000 bases (16000 bits, one ciphertext chunk).
	genome := workload.RandomGenome(8000, src)

	// Draw two reads from known loci (and keep one extra random read that
	// should not map).
	read1, _ := workload.ExtractRead(genome, 1234, 32) // 32 bp = 64 bits
	read2, _ := workload.ExtractRead(genome, 6001, 48)
	decoy := workload.RandomGenome(32, src)

	packedGenome, genomeBits, err := workload.EncodeBases(genome)
	if err != nil {
		log.Fatal(err)
	}

	cfg := ciphermatch.Config{
		Params:    ciphermatch.ParamsPaper(),
		AlignBits: 2, // occurrences start at base boundaries
		Mode:      ciphermatch.ModeSeededMatch,
	}
	client, err := ciphermatch.NewClient(cfg, ciphermatch.NewSeed("dna-owner"))
	if err != nil {
		log.Fatal(err)
	}
	db, err := client.EncryptDatabase(packedGenome, genomeBits)
	if err != nil {
		log.Fatal(err)
	}
	server := ciphermatch.NewServer(cfg.Params, db)
	fmt.Printf("reference: %d bases -> %d encrypted chunk(s)\n", len(genome), len(db.Chunks))

	for _, read := range []struct {
		name  string
		bases []byte
	}{
		{"read1 (planted at base 1234)", read1},
		{"read2 (planted at base 6001)", read2},
		{"decoy (random)", decoy},
	} {
		packedRead, readBits, err := workload.EncodeBases(read.bases)
		if err != nil {
			log.Fatal(err)
		}
		q, err := client.PrepareQuery(packedRead, readBits, genomeBits)
		if err != nil {
			log.Fatal(err)
		}
		result, err := server.SearchAndIndex(q)
		if err != nil {
			log.Fatal(err)
		}
		verified := ciphermatch.VerifyCandidates(packedGenome, genomeBits, packedRead, readBits, result.Candidates)
		fmt.Printf("%s: %d bp, %d shift variants, %d hom-adds -> ", read.name, len(read.bases), len(q.Residues), result.Stats.HomAdds)
		result.Release()
		if len(verified) == 0 {
			fmt.Println("no mapping")
			continue
		}
		for _, o := range verified {
			fmt.Printf("maps at base %d ", o/2)
		}
		fmt.Println()
	}
}
