// Quickstart: secure exact string matching end to end — pack, encrypt,
// search with homomorphic additions only, generate the index server-side,
// verify client-side.
package main

import (
	"fmt"
	"log"

	"ciphermatch"
)

func main() {
	data := []byte("homomorphic encryption allows secure computation on encrypted data " +
		"without revealing the original data; secure string matching is the key operation")
	needle := []byte("secure")

	cfg := ciphermatch.Config{
		Params:    ciphermatch.ParamsPaper(), // n=1024, log q=32, log t=16
		AlignBits: 8,                         // byte-aligned occurrences
		Mode:      ciphermatch.ModeSeededMatch,
	}
	client, err := ciphermatch.NewClient(cfg, ciphermatch.NewSeed("quickstart"))
	if err != nil {
		log.Fatal(err)
	}

	// Client side: pack 16 bits per plaintext coefficient and encrypt.
	dbBits := len(data) * 8
	db, err := client.EncryptDatabase(data, dbBits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d bytes -> %d encrypted chunk(s), %d bytes (%.1fx expansion)\n",
		len(data), len(db.Chunks), db.SizeBytes(cfg.Params),
		float64(db.SizeBytes(cfg.Params))/float64(len(data)))

	// Client side: negate, replicate and shift the query; build match
	// tokens from the seed.
	q, err := client.PrepareQuery(needle, len(needle)*8, dbBits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %q (%d bits), %d shift variants, %d pattern ciphertexts\n",
		needle, len(needle)*8, len(q.Residues), len(q.Patterns))

	// Server side: homomorphic additions + index generation. The server
	// never sees keys or plaintext.
	server := ciphermatch.NewServer(cfg.Params, db)
	result, err := server.SearchAndIndex(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: %d homomorphic additions (no multiplications), %d candidates\n",
		result.Stats.HomAdds, len(result.Candidates))

	// Client side: exact verification of candidate boundary bits.
	verified := ciphermatch.VerifyCandidates(data, dbBits, needle, len(needle)*8, result.Candidates)
	result.Release()
	for _, o := range verified {
		fmt.Printf("match at byte %d: %q\n", o/8, data[o/8:o/8+len(needle)])
	}
}
