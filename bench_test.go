package ciphermatch

// One benchmark per paper table/figure (each runs the corresponding
// harness experiment), plus micro-benchmarks of the primitive operations
// and ablation benchmarks for the design choices called out in DESIGN.md §6.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"io"
	"testing"

	"ciphermatch/internal/bfv"
	"ciphermatch/internal/core"
	"ciphermatch/internal/flash"
	"ciphermatch/internal/harness"
	"ciphermatch/internal/perfmodel"
	"ciphermatch/internal/pum"
	"ciphermatch/internal/ring"
	"ciphermatch/internal/rng"
	"ciphermatch/internal/ssd"
)

// runExperiment executes one harness experiment per iteration; on the
// first iteration the rendered table goes to the benchmark log so that
// `go test -bench` output doubles as the figure reproduction.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	m := perfmodel.NewPaperModel()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(m)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sink tableLogger
			sink.b = b
			if err := tbl.Render(&sink); err != nil {
				b.Fatal(err)
			}
		}
	}
}

type tableLogger struct{ b *testing.B }

func (t *tableLogger) Write(p []byte) (int, error) {
	t.b.Log(string(p))
	return len(p), nil
}

var _ io.Writer = (*tableLogger)(nil)

func BenchmarkTable1(b *testing.B)   { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)   { runExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)   { runExperiment(b, "table3") }
func BenchmarkFigure2(b *testing.B)  { runExperiment(b, "fig2") }
func BenchmarkFigure3(b *testing.B)  { runExperiment(b, "fig3") }
func BenchmarkFigure7(b *testing.B)  { runExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B)  { runExperiment(b, "fig8") }
func BenchmarkFigure9(b *testing.B)  { runExperiment(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { runExperiment(b, "fig10") }
func BenchmarkFigure11(b *testing.B) { runExperiment(b, "fig11") }
func BenchmarkFigure12(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkOverhead(b *testing.B) { runExperiment(b, "overhead") }

// --- primitive micro-benchmarks (paper parameters) ---

func benchSetup(b *testing.B) (*bfv.Encoder, *bfv.Encryptor, *bfv.Decryptor, *bfv.Evaluator, *bfv.Ciphertext, *bfv.Ciphertext) {
	b.Helper()
	p := bfv.ParamsPaper()
	src := rng.NewSourceFromString("bench")
	sk, pk := bfv.KeyGen(p, src.Fork("keys"))
	enc := bfv.NewEncoder(p)
	encryptor := bfv.NewEncryptor(p, pk)
	dec := bfv.NewDecryptor(p, sk)
	ev := bfv.NewEvaluator(p)
	msg := make([]uint64, p.N)
	for i := range msg {
		msg[i] = src.Uniform(p.T)
	}
	pt, err := enc.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	ca := encryptor.Encrypt(pt, src.Fork("a"))
	cb := encryptor.Encrypt(pt, src.Fork("b"))
	return enc, encryptor, dec, ev, ca, cb
}

// BenchmarkHomAdd measures the only homomorphic operation CIPHERMATCH
// uses: the per-chunk cost of secure search.
func BenchmarkHomAdd(b *testing.B) {
	_, _, _, ev, ca, cb := benchSetup(b)
	out := ca.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ev.AddInto(ca, cb, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHomMul measures the operation the CIPHERMATCH algorithm
// eliminates (Key Takeaway 1) at the arithmetic baseline's parameters.
func BenchmarkHomMul(b *testing.B) {
	p := bfv.ParamsArithBaseline()
	src := rng.NewSourceFromString("mul-bench")
	sk, pk := bfv.KeyGen(p, src.Fork("keys"))
	rlk := bfv.NewRelinKey(p, sk, src.Fork("rlk"))
	enc := bfv.NewEncoder(p)
	encryptor := bfv.NewEncryptor(p, pk)
	ev := bfv.NewEvaluator(p)
	msg := make([]uint64, p.N)
	for i := range msg {
		msg[i] = src.Uniform(2)
	}
	pt, _ := enc.Encode(msg)
	ca := encryptor.Encrypt(pt, src.Fork("a"))
	cb := encryptor.Encrypt(pt, src.Fork("b"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.MulRelin(ca, cb, rlk); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHomRotation measures a Galois automorphism + key switch — the
// "costly rotation" of the scalable arithmetic baselines [34]/[29] that
// CIPHERMATCH's algorithm never needs.
func BenchmarkHomRotation(b *testing.B) {
	p := bfv.ParamsNTTArith()
	src := rng.NewSourceFromString("rot-bench")
	sk, pk := bfv.KeyGen(p, src.Fork("keys"))
	gk, err := bfv.NewGaloisKey(p, sk, 3, src.Fork("gk"))
	if err != nil {
		b.Fatal(err)
	}
	enc := bfv.NewEncoder(p)
	encryptor := bfv.NewEncryptor(p, pk)
	ev := bfv.NewEvaluator(p)
	pt, _ := enc.Encode(make([]uint64, p.N))
	ct := encryptor.Encrypt(pt, src.Fork("e"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Automorphism(ct, gk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncrypt(b *testing.B) {
	enc, encryptor, _, _, _, _ := benchSetup(b)
	src := rng.NewSourceFromString("enc-bench")
	pt, _ := enc.Encode(make([]uint64, bfv.ParamsPaper().N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encryptor.Encrypt(pt, src)
	}
}

func BenchmarkDecrypt(b *testing.B) {
	_, _, dec, _, ca, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decrypt(ca)
	}
}

// BenchmarkBitSerialAddFlash measures one in-flash 32-bit bit-serial
// addition over a full 4 KiB page (32768 parallel lanes), the µ-program of
// Fig. 5 on the functional simulator.
func BenchmarkBitSerialAddFlash(b *testing.B) {
	plane := flash.NewPlane(flash.DefaultGeometry(), flash.DefaultTiming(), flash.DefaultEnergy())
	if err := plane.SetBlockMode(0, flash.ModeSLCESP); err != nil {
		b.Fatal(err)
	}
	src := rng.NewSourceFromString("flash-bench")
	coeffs := make([]uint32, plane.Geometry().PageBits())
	operand := make([]uint32, len(coeffs))
	for i := range coeffs {
		coeffs[i] = uint32(src.Uint64())
		operand[i] = uint32(src.Uint64())
	}
	if err := plane.WriteVertical(0, 0, coeffs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plane.BitSerialAdd(0, 0, operand); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPuMAdd32 measures one SIMDRAM-style row-wide 32-bit addition
// (65536 parallel lanes).
func BenchmarkPuMAdd32(b *testing.B) {
	bank := pum.NewBank(pum.ExternalDDR4())
	src := rng.NewSourceFromString("pum-bench")
	lanes := bank.Config().RowBits()
	a := make([]uint32, lanes)
	c := make([]uint32, lanes)
	for i := range a {
		a[i] = uint32(src.Uint64())
		c[i] = uint32(src.Uint64())
	}
	if err := bank.WriteVertical(0, a); err != nil {
		b.Fatal(err)
	}
	if err := bank.WriteVertical(32, c); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.BitSerialAdd32(0, 32, 64)
	}
}

// BenchmarkEndToEndSearchSW measures a complete software search (1 KiB
// database, 32-bit query, byte alignment) through the public API.
func BenchmarkEndToEndSearchSW(b *testing.B) {
	cfg := Config{Params: ParamsPaper(), AlignBits: 8, Mode: ModeSeededMatch}
	client, err := NewClient(cfg, NewSeed("e2e-bench"))
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 1024)
	NewSeed("e2e-data").Bytes(data)
	db, err := client.EncryptDatabase(data, len(data)*8)
	if err != nil {
		b.Fatal(err)
	}
	server := NewServer(cfg.Params, db)
	q, err := client.PrepareQuery([]byte{0xDE, 0xAD, 0xBE, 0xEF}, 32, len(data)*8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := server.SearchAndIndex(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndSearchIFP measures the same search executed inside the
// simulated SSD (functional latch-level homomorphic addition).
func BenchmarkEndToEndSearchIFP(b *testing.B) {
	cfg := Config{Params: ParamsPaper(), AlignBits: 8, Mode: ModeSeededMatch}
	client, err := NewClient(cfg, NewSeed("e2e-bench"))
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 1024)
	NewSeed("e2e-data").Bytes(data)
	db, err := client.EncryptDatabase(data, len(data)*8)
	if err != nil {
		b.Fatal(err)
	}
	drive, err := NewSSD(DefaultSSDConfig(), cfg.Params, SoftwareTransposition)
	if err != nil {
		b.Fatal(err)
	}
	if err := drive.CMWriteDatabase(db); err != nil {
		b.Fatal(err)
	}
	q, err := client.PrepareQuery([]byte{0xDE, 0xAD, 0xBE, 0xEF}, 32, len(data)*8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := drive.CMSearch(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngine runs the standard fixed workload (4 KiB database,
// 32-bit query, byte alignment, seeded-match mode — the same fixture
// cmbench -json measures, see harness.NewEngineBenchFixture) through
// every execution engine, so BENCH snapshots track the per-substrate
// trajectory the way the paper compares CPU, PuM and flash on one
// algorithm.
// BenchmarkPrepareQuery measures client-side query preparation on the
// standard engine-bench workload in both token representations. The
// factored builder derives EncryptC0 once per chunk plus once per phase
// (chunks+phases ring encryptions); the legacy builder additionally
// expands residues×chunks token polynomials. Before the per-chunk
// hoist, the legacy path re-ran EncryptC0 once per (residue, chunk) —
// an R× larger encryption count that this benchmark keeps visible.
func BenchmarkPrepareQuery(b *testing.B) {
	cfg := Config{Params: ParamsPaper(), AlignBits: 8, Mode: ModeSeededMatch}
	client, err := NewClient(cfg, NewSeed("prep-bench"))
	if err != nil {
		b.Fatal(err)
	}
	const dbBits = 4096 * 8
	pattern := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	b.Run("factored", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := client.PrepareQuery(pattern, 32, dbBits); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := client.PrepareLegacyQuery(pattern, 32, dbBits); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEngine(b *testing.B) {
	cfg, db, q, err := harness.NewEngineBenchFixture()
	if err != nil {
		b.Fatal(err)
	}
	for _, specStr := range harness.DefaultEngineBenchSpecs() {
		b.Run(specStr, func(b *testing.B) {
			benchEngineSpec(b, cfg, db, q, specStr)
		})
	}
	// The large fixture (128 KiB database, 64 chunks, 1 MiB arena)
	// streams from memory instead of cache; the pool-vs-serial
	// crossover lives between the two sizes (see DESIGN.md §4.4).
	lcfg, ldb, lq, err := harness.NewEngineBenchLargeFixture()
	if err != nil {
		b.Fatal(err)
	}
	for _, specStr := range harness.DefaultEngineBenchSpecs() {
		b.Run("large/"+specStr, func(b *testing.B) {
			benchEngineSpec(b, lcfg, ldb, lq, specStr)
		})
	}
}

func benchEngineSpec(b *testing.B, cfg core.Config, db *core.EncryptedDB, q *core.Query, specStr string) {
	spec, err := ParseEngineSpec(specStr)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := NewEngine(cfg.Params, db, spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ir, err := eng.SearchAndIndex(q)
		if err != nil {
			b.Fatal(err)
		}
		// Recycle the hit bitmaps the way the wire server does
		// after encoding, so the steady state exercises the
		// bitset pool rather than the allocator.
		ir.Release()
	}
	b.StopTimer()
	if closer, ok := eng.(interface{ Close() error }); ok {
		_ = closer.Close()
	}
}

// BenchmarkRingKernels is the in-tree twin of harness.RunKernelBench:
// the fused compare kernels on the standard 64-chunk × n=1024 arena
// workload under every dispatch path available on this machine,
// reporting coefficients/sec. Force a path process-wide with
// CM_KERNEL=generic|unrolled|avx2 instead when benchmarking engines.
func BenchmarkRingKernels(b *testing.B) {
	prev := ring.ActiveKernel()
	defer ring.SetKernel(prev)
	const chunks, n, R = 64, 1024, 4
	for _, fam := range []struct {
		name string
		q    uint64
	}{{"pow2", 1 << 32}, {"generic", (1 << 40) + 15}} {
		r := ring.MustNew(n, fam.q)
		src := rng.NewSourceFromString("ring-kernel-bench-" + fam.name)
		planes := make([]ring.Poly, chunks)
		for c := range planes {
			planes[c] = r.NewPoly()
			r.UniformPoly(src, planes[c])
		}
		d := r.NewPoly()
		r.UniformPoly(src, d)
		rhs := make([]ring.Poly, R)
		for v := range rhs {
			rhs[v] = r.NewPoly()
			r.UniformPoly(src, rhs[v])
		}
		bits := make([][]uint64, R)
		for v := range bits {
			bits[v] = make([]uint64, (chunks*n+63)/64)
		}
		for _, path := range ring.AvailableKernels() {
			b.Run(fam.name+"/"+path.String(), func(b *testing.B) {
				if err := ring.SetKernel(path); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(2 * chunks * n * 8)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for c := range planes {
						r.SubCmpMultiBits(planes[c], d, rhs, bits, c*n)
					}
				}
				coeffs := float64(chunks) * float64(n) * float64(R) * float64(b.N)
				b.ReportMetric(coeffs/b.Elapsed().Seconds(), "coeffs/s")
			})
		}
	}
}

// BenchmarkEngineBatch compares the batched multi-query pipeline
// against sequential execution: 8 in-flight queries answered by one
// SearchAndIndexBatch pass versus 8 SearchAndIndex calls, per engine
// kind. The batch models a production stream against a hot database —
// 2 distinct patterns each issued by 4 users — so the pipeline's two
// levers both engage: one chunk walk amortised across the batch, and
// pattern-ciphertext dedup collapsing repeated queries (seed-derived
// pattern randomness makes equal queries byte-identical). The SSD kind
// exercises the sequential fallback, so its pair is expected to tie.
func BenchmarkEngineBatch(b *testing.B) {
	cfg := Config{Params: ParamsPaper(), AlignBits: 8, Mode: ModeSeededMatch}
	client, err := NewClient(cfg, NewSeed("engine-batch-bench"))
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4096)
	NewSeed("engine-batch-bench-data").Bytes(data)
	db, err := client.EncryptDatabase(data, len(data)*8)
	if err != nil {
		b.Fatal(err)
	}
	patterns := [][]byte{{0xDE, 0xAD, 0xBE, 0xEF}, {0xCA, 0xFE, 0xBA, 0xBE}}
	queries := make([]*Query, 8)
	for i := range queries {
		if queries[i], err = client.PrepareQuery(patterns[i%len(patterns)], 32, len(data)*8); err != nil {
			b.Fatal(err)
		}
	}
	bq := NewBatchQuery(queries...)
	for _, specStr := range []string{"serial", "pool", "ssd"} {
		spec, err := ParseEngineSpec(specStr)
		if err != nil {
			b.Fatal(err)
		}
		newEngine := func(b *testing.B) Engine {
			eng, err := NewEngine(cfg.Params, db, spec)
			if err != nil {
				b.Fatal(err)
			}
			return eng
		}
		closeEngine := func(eng Engine) {
			if closer, ok := eng.(interface{ Close() error }); ok {
				_ = closer.Close()
			}
		}
		b.Run(specStr+"/batch-8", func(b *testing.B) {
			eng := newEngine(b)
			defer closeEngine(eng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SearchBatch(eng, bq); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(specStr+"/sequential-8", func(b *testing.B) {
			eng := newEngine(b)
			defer closeEngine(eng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, err := eng.SearchAndIndex(q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- ablation benchmarks (DESIGN.md §6) ---

// BenchmarkAblationPolyMul compares the two negacyclic multiplication
// algorithms at the paper's ring degree.
func BenchmarkAblationPolyMul(b *testing.B) {
	r := ring.MustNew(1024, 1<<32)
	src := rng.NewSourceFromString("polymul")
	x := r.NewPoly()
	y := r.NewPoly()
	r.UniformPoly(src, x)
	r.UniformPoly(src, y)
	out := r.NewPoly()
	b.Run("schoolbook", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.MulSchoolbook(x, y, out)
		}
	})
	b.Run("karatsuba", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.MulKaratsuba(x, y, out)
		}
	})
	// NTT at a prime modulus of comparable size (the SEAL-style regime).
	q, err := ring.FindNTTPrime(33, 1024)
	if err != nil {
		b.Fatal(err)
	}
	rp := ring.MustNew(1024, q)
	xp := rp.NewPoly()
	yp := rp.NewPoly()
	rp.UniformPoly(src, xp)
	rp.UniformPoly(src, yp)
	outP := rp.NewPoly()
	b.Run("ntt-prime", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rp.MulNTT(xp, yp, outP)
		}
	})
}

// BenchmarkAblationPackingWidth quantifies the memory-footprint effect of
// the packing width (the paper's core software contribution): 1-bit
// (Yasuda) vs 16-bit (CIPHERMATCH) vs per-bit Boolean.
func BenchmarkAblationPackingWidth(b *testing.B) {
	p := bfv.ParamsPaper()
	const dbBits = 1 << 23
	var cm, ya, bo core.Footprint
	for i := 0; i < b.N; i++ {
		cm = core.FootprintCiphermatch(dbBits, p)
		ya = core.FootprintYasuda(dbBits, p)
		bo = core.FootprintBoolean(dbBits)
	}
	b.ReportMetric(cm.Expansion(), "cm-expansion-x")
	b.ReportMetric(ya.Expansion(), "yasuda-expansion-x")
	b.ReportMetric(bo.Expansion(), "boolean-expansion-x")
}

// BenchmarkAblationTransposition compares the software (13.6 µs/4KiB) and
// hardware (158 ns/4KiB, §7.1) transposition units on a CM-search.
func BenchmarkAblationTransposition(b *testing.B) {
	for _, kind := range []struct {
		name string
		k    ssd.TranspositionKind
	}{{"software", ssd.SoftwareTransposition}, {"hardware", ssd.HardwareTransposition}} {
		b.Run(kind.name, func(b *testing.B) {
			cfg := DefaultSSDConfig()
			lat := cfg.TransposeLatency(kind.k)
			for i := 0; i < b.N; i++ {
				_ = lat
			}
			b.ReportMetric(float64(lat.Nanoseconds()), "ns-per-4KiB-page")
		})
	}
}

// BenchmarkAblationIndexGen compares the two index-generation modes
// end to end: client-side decryption vs server-side token comparison.
func BenchmarkAblationIndexGen(b *testing.B) {
	data := make([]byte, 2048)
	NewSeed("idxgen-data").Bytes(data)
	query := []byte{0x13, 0x37, 0x42, 0x24}
	for _, mode := range []struct {
		name string
		m    IndexMode
	}{{"client-decrypt", ModeClientDecrypt}, {"seeded-match", ModeSeededMatch}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := Config{Params: ParamsPaper(), AlignBits: 8, Mode: mode.m}
			client, err := NewClient(cfg, NewSeed("idxgen"))
			if err != nil {
				b.Fatal(err)
			}
			db, err := client.EncryptDatabase(data, len(data)*8)
			if err != nil {
				b.Fatal(err)
			}
			server := NewServer(cfg.Params, db)
			q, err := client.PrepareQuery(query, 32, len(data)*8)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode.m == ModeSeededMatch {
					if _, err := server.SearchAndIndex(q); err != nil {
						b.Fatal(err)
					}
					continue
				}
				sr, err := server.Search(q)
				if err != nil {
					b.Fatal(err)
				}
				hits := client.ExtractHits(q, sr)
				Candidates(hits, len(data)*8, 32, 8)
			}
		})
	}
}

// BenchmarkAblationShiftAlignment quantifies how the occurrence-alignment
// guarantee changes query cost: variants = y / gcd(align, y).
func BenchmarkAblationShiftAlignment(b *testing.B) {
	data := make([]byte, 2048)
	NewSeed("align-data").Bytes(data)
	query := []byte{0xCA, 0xFE, 0xBA, 0xBE}
	for _, align := range []int{1, 2, 8, 16} {
		b.Run(fmt.Sprintf("align-%d", align), func(b *testing.B) {
			cfg := Config{Params: ParamsPaper(), AlignBits: align, Mode: ModeSeededMatch}
			client, err := NewClient(cfg, NewSeed("align"))
			if err != nil {
				b.Fatal(err)
			}
			db, err := client.EncryptDatabase(data, len(data)*8)
			if err != nil {
				b.Fatal(err)
			}
			server := NewServer(cfg.Params, db)
			q, err := client.PrepareQuery(query, 32, len(data)*8)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(q.Residues)), "shift-variants")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := server.SearchAndIndex(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
