module ciphermatch

go 1.24
